(** VIR — a tiny portable virtual RISC used to write benchmark kernels once
    and lower them onto every simulated ISA.

    The paper validates with SPEC CPU2000 and MediaBench binaries; inside a
    sealed container we have no such binaries or cross-compilers, so the
    workload library writes each kernel in VIR and each ISA provides a
    lowering. Because the same kernel must produce bit-identical observable
    output on a 64-bit ISA (Alpha) and 32-bit ISAs (ARM, PowerPC), VIR has
    32-bit word semantics: registers hold values that every target keeps
    congruent modulo 2^32, memory words are 4 bytes, and comparisons are on
    the 32-bit value.

    Sixteen virtual registers v0..v15. Calling convention for the emulated
    OS: syscall number in v0, arguments in v1..v3, result in v0. *)

type reg = int (* 0..15 *)

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type instr =
  | Label of string
  | Li of reg * int32  (** load a 32-bit immediate *)
  | Mv of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Addi of reg * reg * int  (** -32768..32767 *)
  | Andi of reg * reg * int  (** 0..255 (encodable everywhere) *)
  | Shli of reg * reg * int  (** shift by 0..31 *)
  | Shri of reg * reg * int  (** logical *)
  | Sari of reg * reg * int  (** arithmetic *)
  | Ldw of reg * reg * int  (** rd = mem32[rs + imm] (zero-extended) *)
  | Stw of reg * reg * int  (** mem32[rs + imm] = rd *)
  | Ldb of reg * reg * int  (** rd = mem8[rs + imm] (zero-extended) *)
  | Stb of reg * reg * int
  | Bcond of cond * reg * reg * string  (** compare-and-branch *)
  | Jmp of string
  | Jr of reg  (** indirect jump through a register *)
  | La of reg * string
      (** load a label's location. The reference executor uses the
          label's instruction index; lowerings use its absolute code
          address. Programs must treat the value as opaque (load it,
          move it, [Jr] through it) — only then do the reference and
          the lowered runs agree on everything observable. *)
  | Sys  (** emulated OS call *)

type program = instr list

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Geu -> "geu"

let pp_instr ppf (i : instr) =
  let r n = Printf.sprintf "v%d" n in
  match i with
  | Label l -> Format.fprintf ppf "%s:" l
  | Li (d, v) -> Format.fprintf ppf "  li %s, %ld" (r d) v
  | Mv (d, s) -> Format.fprintf ppf "  mv %s, %s" (r d) (r s)
  | Add (d, a, b) -> Format.fprintf ppf "  add %s, %s, %s" (r d) (r a) (r b)
  | Sub (d, a, b) -> Format.fprintf ppf "  sub %s, %s, %s" (r d) (r a) (r b)
  | Mul (d, a, b) -> Format.fprintf ppf "  mul %s, %s, %s" (r d) (r a) (r b)
  | And_ (d, a, b) -> Format.fprintf ppf "  and %s, %s, %s" (r d) (r a) (r b)
  | Or_ (d, a, b) -> Format.fprintf ppf "  or %s, %s, %s" (r d) (r a) (r b)
  | Xor_ (d, a, b) -> Format.fprintf ppf "  xor %s, %s, %s" (r d) (r a) (r b)
  | Addi (d, a, i) -> Format.fprintf ppf "  addi %s, %s, %d" (r d) (r a) i
  | Andi (d, a, i) -> Format.fprintf ppf "  andi %s, %s, %d" (r d) (r a) i
  | Shli (d, a, i) -> Format.fprintf ppf "  shli %s, %s, %d" (r d) (r a) i
  | Shri (d, a, i) -> Format.fprintf ppf "  shri %s, %s, %d" (r d) (r a) i
  | Sari (d, a, i) -> Format.fprintf ppf "  sari %s, %s, %d" (r d) (r a) i
  | Ldw (d, a, i) -> Format.fprintf ppf "  ldw %s, %d(%s)" (r d) i (r a)
  | Stw (s, a, i) -> Format.fprintf ppf "  stw %s, %d(%s)" (r s) i (r a)
  | Ldb (d, a, i) -> Format.fprintf ppf "  ldb %s, %d(%s)" (r d) i (r a)
  | Stb (s, a, i) -> Format.fprintf ppf "  stb %s, %d(%s)" (r s) i (r a)
  | Bcond (c, a, b, l) ->
    Format.fprintf ppf "  b%s %s, %s, %s" (cond_to_string c) (r a) (r b) l
  | Jmp l -> Format.fprintf ppf "  jmp %s" l
  | Jr s -> Format.fprintf ppf "  jr %s" (r s)
  | La (d, l) -> Format.fprintf ppf "  la %s, %s" (r d) l
  | Sys -> Format.fprintf ppf "  sys"

let pp ppf (p : program) =
  List.iter (fun i -> Format.fprintf ppf "%a@\n" pp_instr i) p

(** Well-formedness: register ranges, immediate ranges, label resolution.
    Violations raise {!Machine.Sim_error.Error} carrying the offending
    instruction's index and pretty-printed form, so a malformed program
    yields a diagnostic instead of a backtrace. *)
let validate (p : program) =
  let where = ref (-1) in
  let reject what =
    let context =
      if !where < 0 then []
      else
        [
          ("instruction", string_of_int !where);
          ( "text",
            match List.nth_opt p !where with
            | Some i -> String.trim (Format.asprintf "%a" pp_instr i)
            | None -> "?" );
        ]
    in
    Machine.Sim_error.raisef ~component:"vir" ~context "%s" what
  in
  let labels = Hashtbl.create 16 in
  List.iteri
    (fun idx instr ->
      match instr with
      | Label l ->
        where := idx;
        if Hashtbl.mem labels l then reject ("duplicate label " ^ l);
        Hashtbl.add labels l ()
      | _ -> ())
    p;
  let reg n = if n < 0 || n > 15 then reject "register out of range" in
  let imm16 i = if i < -32768 || i > 32767 then reject "immediate out of range" in
  let imm8 i = if i < 0 || i > 255 then reject "andi immediate out of range" in
  let sh i = if i < 0 || i > 31 then reject "shift out of range" in
  let lbl l = if not (Hashtbl.mem labels l) then reject ("unknown label " ^ l) in
  List.iteri
    (fun idx instr ->
      where := idx;
      match instr with
      | Label _ -> ()
      | Li (d, _) -> reg d
      | Mv (d, s) ->
        reg d;
        reg s
      | Add (d, a, b) | Sub (d, a, b) | Mul (d, a, b) | And_ (d, a, b)
      | Or_ (d, a, b) | Xor_ (d, a, b) ->
        reg d;
        reg a;
        reg b
      | Addi (d, a, i) ->
        reg d;
        reg a;
        imm16 i
      | Andi (d, a, i) ->
        reg d;
        reg a;
        imm8 i
      | Shli (d, a, i) | Shri (d, a, i) | Sari (d, a, i) ->
        reg d;
        reg a;
        sh i
      | Ldw (d, a, i) | Stw (d, a, i) | Ldb (d, a, i) | Stb (d, a, i) ->
        reg d;
        reg a;
        imm16 i
      | Bcond (_, a, b, l) ->
        reg a;
        reg b;
        lbl l
      | Jmp l -> lbl l
      | Jr s -> reg s
      | La (d, l) ->
        reg d;
        lbl l
      | Sys -> ())
    p;
  where := -1

(* ------------------------------------------------------------------ *)
(* Reference executor                                                   *)
(* ------------------------------------------------------------------ *)

(** Observable result of running a VIR program on the reference executor:
    what every ISA lowering must reproduce. *)
type result = { exit_status : int; output : string; dyn_instrs : int }

(** [run ?input ?fuel p] interprets the program directly (no ISA involved).
    Used as the oracle in cross-ISA differential tests. *)
let run ?(input = "") ?(fuel = 100_000_000) (p : program) : result =
  validate p;
  let prog = Array.of_list p in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i instr -> match instr with Label l -> Hashtbl.add labels l i | _ -> ())
    prog;
  let regs = Array.make 16 0l in
  let mem : (int32, int) Hashtbl.t = Hashtbl.create 4096 in
  let out = Buffer.create 64 in
  let in_pos = ref 0 in
  let mem_get a = match Hashtbl.find_opt mem a with Some v -> v | None -> 0 in
  let ldb a = mem_get a in
  let stb a v = Hashtbl.replace mem a (v land 0xff) in
  let ldw a =
    let b i = ldb (Int32.add a (Int32.of_int i)) in
    Int32.logor
      (Int32.of_int (b 0))
      (Int32.logor
         (Int32.shift_left (Int32.of_int (b 1)) 8)
         (Int32.logor
            (Int32.shift_left (Int32.of_int (b 2)) 16)
            (Int32.shift_left (Int32.of_int (b 3)) 24)))
  in
  let stw a v =
    for i = 0 to 3 do
      stb
        (Int32.add a (Int32.of_int i))
        (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff)
    done
  in
  let unsigned_lt a b =
    (* unsigned 32-bit compare *)
    Int32.unsigned_compare a b < 0
  in
  let count = ref 0 in
  let status = ref None in
  let pc = ref 0 in
  while !status = None && !pc < Array.length prog && !count < fuel do
    incr count;
    let next = ref (!pc + 1) in
    (match prog.(!pc) with
    | Label _ -> ()
    | Li (d, v) -> regs.(d) <- v
    | Mv (d, s) -> regs.(d) <- regs.(s)
    | Add (d, a, b) -> regs.(d) <- Int32.add regs.(a) regs.(b)
    | Sub (d, a, b) -> regs.(d) <- Int32.sub regs.(a) regs.(b)
    | Mul (d, a, b) -> regs.(d) <- Int32.mul regs.(a) regs.(b)
    | And_ (d, a, b) -> regs.(d) <- Int32.logand regs.(a) regs.(b)
    | Or_ (d, a, b) -> regs.(d) <- Int32.logor regs.(a) regs.(b)
    | Xor_ (d, a, b) -> regs.(d) <- Int32.logxor regs.(a) regs.(b)
    | Addi (d, a, i) -> regs.(d) <- Int32.add regs.(a) (Int32.of_int i)
    | Andi (d, a, i) -> regs.(d) <- Int32.logand regs.(a) (Int32.of_int i)
    | Shli (d, a, i) -> regs.(d) <- Int32.shift_left regs.(a) i
    | Shri (d, a, i) -> regs.(d) <- Int32.shift_right_logical regs.(a) i
    | Sari (d, a, i) -> regs.(d) <- Int32.shift_right regs.(a) i
    | Ldw (d, a, i) -> regs.(d) <- ldw (Int32.add regs.(a) (Int32.of_int i))
    | Stw (s, a, i) -> stw (Int32.add regs.(a) (Int32.of_int i)) regs.(s)
    | Ldb (d, a, i) ->
      regs.(d) <- Int32.of_int (ldb (Int32.add regs.(a) (Int32.of_int i)))
    | Stb (s, a, i) ->
      stb (Int32.add regs.(a) (Int32.of_int i)) (Int32.to_int regs.(s) land 0xff)
    | Bcond (c, a, b, l) ->
      let va = regs.(a) and vb = regs.(b) in
      let taken =
        match c with
        | Eq -> Int32.equal va vb
        | Ne -> not (Int32.equal va vb)
        | Lt -> Int32.compare va vb < 0
        | Ge -> Int32.compare va vb >= 0
        | Ltu -> unsigned_lt va vb
        | Geu -> not (unsigned_lt va vb)
      in
      if taken then next := Hashtbl.find labels l
    | Jmp l -> next := Hashtbl.find labels l
    | Jr r -> next := Int32.to_int regs.(r)
    | La (d, l) -> regs.(d) <- Int32.of_int (Hashtbl.find labels l)
    | Sys -> (
      let nr = Int32.to_int regs.(0) in
      match nr with
      | 0 -> status := Some (Int32.to_int regs.(1) land 0xff)
      | 1 ->
        (* write(fd=v1, buf=v2, len=v3) *)
        let buf = regs.(2) and len = Int32.to_int regs.(3) in
        for i = 0 to len - 1 do
          Buffer.add_char out (Char.chr (ldb (Int32.add buf (Int32.of_int i))))
        done;
        regs.(0) <- Int32.of_int len
      | 2 ->
        let buf = regs.(2) and len = Int32.to_int regs.(3) in
        let avail = String.length input - !in_pos in
        let n = min len avail in
        for i = 0 to n - 1 do
          stb (Int32.add buf (Int32.of_int i)) (Char.code input.[!in_pos + i])
        done;
        in_pos := !in_pos + n;
        regs.(0) <- Int32.of_int n
      | 5 -> regs.(0) <- 42l
      | _ -> regs.(0) <- -1l));
    pc := !next
  done;
  match !status with
  | Some s -> { exit_status = s; output = Buffer.contents out; dyn_instrs = !count }
  | None ->
    Machine.Sim_error.raisef ~component:"vir"
      ~context:[ ("fuel", string_of_int fuel); ("executed", string_of_int !count) ]
      "reference executor: program did not exit"
