(** Hot-region execution profiler: decay-window math against a replayed
    model, region aggregation against a brute-force per-pc tally,
    metrics JSONL round-trip, Prometheus text-format lint, speedscope
    structure, and a qcheck property that a profile-only context is
    architecturally transparent across every registered ISA. *)

module P = Obs.Prof

(* ---------------- construction ----------------------------------- *)

let test_create_validation () =
  Alcotest.check_raises "region_bits too large"
    (Invalid_argument "Prof.create: region_bits must be within [0, 62]")
    (fun () -> ignore (P.create ~region_bits:63 ()));
  Alcotest.check_raises "negative region_bits"
    (Invalid_argument "Prof.create: region_bits must be within [0, 62]")
    (fun () -> ignore (P.create ~region_bits:(-1) ()));
  Alcotest.check_raises "zero half_life"
    (Invalid_argument "Prof.create: half_life must be positive") (fun () ->
      ignore (P.create ~half_life:0 ()));
  Alcotest.check_raises "zero sample interval"
    (Invalid_argument "Prof.create: sample_ns_every must be positive")
    (fun () -> ignore (P.create ~sample_ns_every:0 ()))

(* ---------------- decay-window math ------------------------------- *)

(* Replay the documented model independently: attribution groups into
   visits (maximal same-region runs); a visit closing first decays the
   region's window to "now" by [exp (-ln 2 * dt / half_life)] and then
   credits the whole visit; a report decays every region to "now". The
   implementation keeps hotness in 2^-16 fixed point, so each decay may
   truncate by up to one fixed-point unit — the tolerance covers that. *)
let model_hotness ~region_bits ~half_life notes =
  let hl = float_of_int half_life in
  let decay hot dt =
    if dt > 0 && hot > 0. then
      hot *. Float.exp (-.Float.log 2. *. float_of_int dt /. hl)
    else hot
  in
  let tbl = Hashtbl.create 8 in
  let total = ref 0 in
  let cur = ref (-1) in
  let visit = ref 0 in
  let close () =
    if !cur >= 0 && !visit > 0 then begin
      let hot, at =
        match Hashtbl.find_opt tbl !cur with Some x -> x | None -> (0., 0)
      in
      Hashtbl.replace tbl !cur
        (decay hot (!total - at) +. float_of_int !visit, !total);
      visit := 0
    end
  in
  List.iter
    (fun (pc, n) ->
      let id = Int64.to_int pc lsr region_bits in
      if id <> !cur then begin
        close ();
        cur := id
      end;
      visit := !visit + n;
      total := !total + n)
    notes;
  close ();
  Hashtbl.fold
    (fun id (hot, at) acc -> (id, decay hot (!total - at)) :: acc)
    tbl []

let test_decay_vs_model () =
  let region_bits = 6 and half_life = 100 in
  (* a deterministic pseudo-random attribution sequence over 4 regions,
     with visit lengths long and short relative to the half-life *)
  let seed = ref 12345 in
  let rand m =
    seed := ((!seed * 1103515245) + 12321) land 0x3FFFFFFF;
    !seed mod m
  in
  let notes =
    List.init 400 (fun _ ->
        (Int64.of_int (0x1000 + (rand 4 * 64) + rand 64), 1 + rand 250))
  in
  let p = P.create ~region_bits ~half_life () in
  List.iter (fun (pc, instrs) -> P.note p ~pc ~instrs) notes;
  let expected = model_hotness ~region_bits ~half_life notes in
  let got = P.report p in
  Alcotest.(check int) "region count" (List.length expected) (List.length got);
  List.iter
    (fun (r : P.region) ->
      let e = List.assoc r.P.rg_id expected in
      (* fixed-point truncation: <= 2^-16 per decay event *)
      Alcotest.(check (float 0.05))
        (Printf.sprintf "hotness of region %d" r.P.rg_id)
        e r.P.rg_hotness)
    got;
  (* ranking: hottest first, and shares sum to 1 *)
  let hots = List.map (fun (r : P.region) -> r.P.rg_hotness) got in
  Alcotest.(check bool) "sorted by hotness" true
    (List.sort (fun a b -> Float.compare b a) hots = hots);
  let share = List.fold_left (fun a (r : P.region) -> a +. r.P.rg_share) 0. got in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 share

let test_decay_cools_idle_region () =
  (* a region that stops executing halves every half_life instructions
     of *total* execution — simulated work, not wall time *)
  let p = P.create ~half_life:1_000 () in
  P.note p ~pc:0x1000L ~instrs:1_000;
  (* 2 half-lives of work elsewhere *)
  P.note p ~pc:0x9000L ~instrs:2_000;
  let r =
    List.find (fun (r : P.region) -> r.P.rg_lo = 0x1000L) (P.report p)
  in
  Alcotest.(check (float 1.0)) "halved twice" 250. r.P.rg_hotness;
  Alcotest.(check int) "exact instrs untouched by decay" 1_000 r.P.rg_instrs

(* ---------------- region aggregation vs brute force --------------- *)

(* On a per-instruction interface the profiler's per-region counts must
   equal a brute-force tally of the pc before every retired
   instruction. *)
let test_aggregation_vs_bruteforce () =
  let k = List.nth Vir.Kernels.test_suite 3 in
  let prof = P.create () in
  let o = Obs.profile_only ~prof () in
  let l = Workload.load ~obs:o Workload.alpha ~buildset:"one_all" k.program in
  let st = l.iface.st in
  let di = Specsim.Di.create ~info_slots:l.iface.slots.di_size in
  let tally = Hashtbl.create 32 in
  let budget = 200_000 in
  let steps = ref 0 in
  while (not st.halted) && !steps < budget do
    let pc = st.pc in
    let before = st.instr_count in
    l.iface.run_one di;
    if Int64.sub st.instr_count before = 1L then begin
      let id = Int64.to_int pc lsr P.region_bits prof in
      Hashtbl.replace tally id
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally id))
    end;
    incr steps
  done;
  Alcotest.(check bool) "kernel terminated" true st.halted;
  Alcotest.(check int) "distinct regions agree" (Hashtbl.length tally)
    (P.n_regions prof);
  Hashtbl.iter
    (fun id n ->
      Alcotest.(check int)
        (Printf.sprintf "region %d instruction count" id)
        n
        (P.instrs_of prof ~pc:(Int64.of_int (id lsl P.region_bits prof))))
    tally;
  Alcotest.(check int) "total attributed = retired" (Int64.to_int st.instr_count)
    (P.total_instrs prof)

(* Block interfaces aggregate at block boundaries (a block is charged
   whole to its entry region), so per-region counts legitimately differ
   from the per-pc tally — but the total must still be exact. *)
let test_block_totals_exact () =
  let k = List.nth Vir.Kernels.test_suite 3 in
  let prof = P.create () in
  let o = Obs.profile_only ~prof () in
  let l = Workload.load ~obs:o Workload.alpha ~buildset:"block_min" k.program in
  let outcome = Workload.run_to_completion l in
  Alcotest.(check int) "total attributed = retired"
    (Int64.to_int outcome.Workload.instructions)
    (P.total_instrs prof);
  let report_sum =
    List.fold_left (fun a (r : P.region) -> a + r.P.rg_instrs) 0 (P.report prof)
  in
  Alcotest.(check int) "report sums to total" (P.total_instrs prof) report_sum

(* ---------------- metrics JSONL round-trip ------------------------ *)

let test_metrics_jsonl_roundtrip () =
  let path = Filename.temp_file "lisim-test-metrics" ".jsonl" in
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "t.count" in
  let h = Obs.Registry.histogram reg "t.lat" in
  let prof = P.create () in
  P.note prof ~pc:0x1000L ~instrs:7;
  (* interval 0: every tick writes *)
  let m = Obs.Metrics.open_ ~interval_ms:0 ~prof_top:5 ~path () in
  Obs.Registry.add c 1;
  Obs.Hist.record h 100;
  Obs.Metrics.tick ~prof m reg;
  Obs.Registry.add c 1;
  Obs.Metrics.tick ~prof m reg;
  Obs.Metrics.close ~prof m reg;
  (* close is idempotent and post-close ticks are ignored *)
  Obs.Metrics.tick ~prof m reg;
  Obs.Metrics.close ~prof m reg;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check int) "2 ticks + close snapshot" 3 (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Export.parse_opt line with
      | Some j ->
        Alcotest.(check bool) "v=1" true
          (Obs.Export.member "v" j = Some (Obs.Export.Int 1L));
        Alcotest.(check bool) "seq increments" true
          (Obs.Export.member "seq" j = Some (Obs.Export.Int (Int64.of_int i)));
        (match Obs.Export.member "counters" j with
        | Some (Obs.Export.Obj kvs) ->
          Alcotest.(check bool) "counter present" true
            (List.mem_assoc "t.count" kvs);
          Alcotest.(check bool) "histogram present" true
            (List.mem_assoc "t.lat" kvs)
        | _ -> Alcotest.fail "counters object missing");
        (match Obs.Export.member "prof" j with
        | Some (Obs.Export.Arr (Obs.Export.Obj top :: _)) ->
          Alcotest.(check bool) "prof top region" true
            (List.assoc "instrs" top = Obs.Export.Int 7L)
        | _ -> Alcotest.fail "prof top-N missing")
      | None -> Alcotest.fail (Printf.sprintf "line %d unparseable" i))
    lines;
  (* the last line carries the final counter value *)
  match Obs.Export.parse_opt (List.nth lines 2) with
  | Some j -> (
    match Obs.Export.member "counters" j with
    | Some (Obs.Export.Obj kvs) ->
      Alcotest.(check bool) "final counter value" true
        (List.assoc "t.count" kvs = Obs.Export.Int 2L)
    | _ -> Alcotest.fail "counters missing")
  | None -> Alcotest.fail "last line unparseable"

(* ---------------- Prometheus text format -------------------------- *)

let prom_name_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let test_prom_lint () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "z.calls" in
  Obs.Registry.add c 42;
  Obs.Registry.probe reg "a.rate" (fun () -> Obs.Registry.Float 1.5);
  let h = Obs.Registry.histogram reg "m.lat.ns" in
  List.iter (Obs.Hist.record h) [ 1; 3; 3; 100; 5000 ];
  ignore (Obs.Registry.histogram reg "empty.hist");
  let text = Obs.Export.prom (Obs.Registry.snapshot reg) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let typed = Hashtbl.create 8 in
  let bucket_cum = Hashtbl.create 8 in
  let values = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          Alcotest.(check bool) ("TYPE name valid: " ^ name) true
            (prom_name_ok name);
          Alcotest.(check bool) ("TYPE kind valid: " ^ kind) true
            (kind = "gauge" || kind = "histogram");
          Hashtbl.replace typed name kind
        | _ -> Alcotest.fail ("malformed TYPE line: " ^ line)
      end
      else begin
        (* <name>[{le="..."}] <value> *)
        match String.index_opt line ' ' with
        | None -> Alcotest.fail ("malformed sample line: " ^ line)
        | Some sp ->
          let series = String.sub line 0 sp in
          let v = String.sub line (sp + 1) (String.length line - sp - 1) in
          let value =
            match v with
            | "+Inf" -> Float.infinity
            | "-Inf" -> Float.neg_infinity
            | _ -> float_of_string v
          in
          let name, le =
            match String.index_opt series '{' with
            | None -> (series, None)
            | Some b ->
              let base = String.sub series 0 b in
              let label = String.sub series b (String.length series - b) in
              Alcotest.(check bool) ("le label shape: " ^ label) true
                (String.length label > 6
                && String.sub label 0 5 = "{le=\""
                && label.[String.length label - 2] = '"'
                && label.[String.length label - 1] = '}');
              (base, Some (String.sub label 5 (String.length label - 7)))
          in
          Alcotest.(check bool) ("series name valid: " ^ name) true
            (prom_name_ok name);
          (match le with
          | Some _ ->
            (* cumulative buckets never decrease *)
            let prev =
              Option.value ~default:0. (Hashtbl.find_opt bucket_cum name)
            in
            Alcotest.(check bool) ("cumulative: " ^ series) true (value >= prev);
            Hashtbl.replace bucket_cum name value
          | None -> Hashtbl.replace values name value)
      end)
    lines;
  (* every family was typed, prefixed, and the histogram invariants hold *)
  Alcotest.(check (option string)) "counter is a gauge" (Some "gauge")
    (Hashtbl.find_opt typed "lisim_z_calls");
  Alcotest.(check (option string)) "probe is a gauge" (Some "gauge")
    (Hashtbl.find_opt typed "lisim_a_rate");
  Alcotest.(check (option string)) "histogram typed" (Some "histogram")
    (Hashtbl.find_opt typed "lisim_m_lat_ns");
  Alcotest.(check (option (float 0.)) ) "counter value" (Some 42.)
    (Hashtbl.find_opt values "lisim_z_calls");
  Alcotest.(check (option (float 0.))) "+Inf bucket = count" (Some 5.)
    (Hashtbl.find_opt bucket_cum "lisim_m_lat_ns_bucket");
  Alcotest.(check (option (float 0.))) "_count" (Some 5.)
    (Hashtbl.find_opt values "lisim_m_lat_ns_count");
  Alcotest.(check (option (float 0.))) "_sum" (Some (float_of_int (1 + 3 + 3 + 100 + 5000)))
    (Hashtbl.find_opt values "lisim_m_lat_ns_sum");
  (* empty histogram still scrapes: zero everywhere, no finite buckets *)
  Alcotest.(check (option (float 0.))) "empty hist +Inf bucket" (Some 0.)
    (Hashtbl.find_opt bucket_cum "lisim_empty_hist_bucket");
  Alcotest.(check (option (float 0.))) "empty hist count" (Some 0.)
    (Hashtbl.find_opt values "lisim_empty_hist_count");
  (* families appear in name-sorted order (snapshot order) *)
  let type_order =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "#"; "TYPE"; name; _ ] -> Some name
        | _ -> None)
      lines
  in
  Alcotest.(check (list string)) "sorted family order"
    [ "lisim_a_rate"; "lisim_empty_hist"; "lisim_m_lat_ns"; "lisim_z_calls" ]
    type_order

(* ---------------- speedscope export ------------------------------- *)

let test_speedscope_structure () =
  let p = P.create () in
  P.note p ~pc:0x1000L ~instrs:10;
  P.note p ~pc:0x2000L ~instrs:5;
  P.note p ~pc:0x1008L ~instrs:3;
  let j = P.speedscope ~name:"t" p in
  (* the document round-trips through the serializer *)
  let j = Obs.Export.parse (Obs.Export.to_string j) in
  (match Obs.Export.member "$schema" j with
  | Some (Obs.Export.Str s) ->
    Alcotest.(check string) "schema url"
      "https://www.speedscope.app/file-format-schema.json" s
  | _ -> Alcotest.fail "$schema missing");
  let frames =
    match Obs.Export.member "shared" j with
    | Some shared -> (
      match Obs.Export.member "frames" shared with
      | Some (Obs.Export.Arr fs) -> fs
      | _ -> Alcotest.fail "frames missing")
    | None -> Alcotest.fail "shared missing"
  in
  Alcotest.(check int) "one frame per region" 2 (List.length frames);
  match Obs.Export.member "profiles" j with
  | Some (Obs.Export.Arr profiles) ->
    Alcotest.(check int) "two profiles" 2 (List.length profiles);
    List.iter
      (fun prof ->
        let arr field =
          match Obs.Export.member field prof with
          | Some (Obs.Export.Arr xs) -> xs
          | _ -> Alcotest.fail (field ^ " missing")
        in
        let samples = arr "samples" and weights = arr "weights" in
        Alcotest.(check int) "samples/weights aligned" (List.length samples)
          (List.length weights);
        (* every sample is a stack of in-range frame indices *)
        List.iter
          (fun s ->
            match s with
            | Obs.Export.Arr stack ->
              List.iter
                (fun f ->
                  match f with
                  | Obs.Export.Int i ->
                    Alcotest.(check bool) "frame index in range" true
                      (i >= 0L && i < Int64.of_int (List.length frames))
                  | _ -> Alcotest.fail "non-int frame index")
                stack
            | _ -> Alcotest.fail "sample is not a stack")
          samples;
        (* endValue equals the weight total *)
        let total =
          List.fold_left
            (fun a w ->
              match w with Obs.Export.Int i -> Int64.add a i | _ -> a)
            0L weights
        in
        Alcotest.(check bool) "endValue = sum of weights" true
          (Obs.Export.member "endValue" prof = Some (Obs.Export.Int total)))
      profiles;
    (* profile 0 weighs instructions: 10 + 5 + 3; profile 1 weighs the
       two region transitions *)
    let end_value p =
      match Obs.Export.member "endValue" p with
      | Some (Obs.Export.Int i) -> Int64.to_int i
      | _ -> -1
    in
    Alcotest.(check int) "instructions total" 18
      (end_value (List.nth profiles 0));
    Alcotest.(check int) "transition total" 2 (end_value (List.nth profiles 1))
  | _ -> Alcotest.fail "profiles missing"

(* ---------------- architectural transparency ---------------------- *)

let regs_digest (regs : Machine.Regfile.t) =
  let acc = ref 0L in
  for i = 0 to Machine.Regfile.total regs - 1 do
    acc := Int64.add (Int64.mul !acc 1099511628211L) (Machine.Regfile.read_flat regs i)
  done;
  !acc

(* A profile-only context must not change what the machine computes:
   same retirements, same pc, same registers, memory and OS-visible
   output on every ISA and on block, one-call and stepped interfaces. *)
let test_profiler_transparent =
  let n_kernels = List.length Vir.Kernels.test_suite in
  let n_targets = List.length Workload.targets in
  QCheck.Test.make ~count:30
    ~name:"profile-only context is architecturally transparent"
    QCheck.(
      quad
        (int_range 0 (n_targets - 1))
        (int_range 0 2)
        (int_range 0 (n_kernels - 1))
        (int_range 1 5_000))
    (fun (ti, bi, ki, budget) ->
      let t = List.nth Workload.targets ti in
      let bs = List.nth [ "block_min"; "one_all"; "step_all" ] bi in
      let k = List.nth Vir.Kernels.test_suite ki in
      let run obs =
        let l = Workload.load ?obs t ~buildset:bs k.Vir.Kernels.program in
        let executed = Specsim.Iface.run_n l.iface budget in
        let st = l.iface.st in
        ( executed,
          st.instr_count,
          st.pc,
          st.halted,
          regs_digest st.regs,
          Machine.Memory.digest st.mem,
          Machine.Os_emu.output l.os )
      in
      let prof = P.create () in
      let off = run None in
      let on_ = run (Some (Obs.profile_only ~prof ())) in
      let (_, instr_count, _, _, _, _, _) = on_ in
      off = on_ && P.total_instrs prof = Int64.to_int instr_count)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "decay vs replayed model" `Quick test_decay_vs_model;
    Alcotest.test_case "decay cools idle region" `Quick
      test_decay_cools_idle_region;
    Alcotest.test_case "aggregation vs brute force" `Quick
      test_aggregation_vs_bruteforce;
    Alcotest.test_case "block totals exact" `Quick test_block_totals_exact;
    Alcotest.test_case "metrics jsonl round-trip" `Quick
      test_metrics_jsonl_roundtrip;
    Alcotest.test_case "prometheus format lint" `Quick test_prom_lint;
    Alcotest.test_case "speedscope structure" `Quick test_speedscope_structure;
    QCheck_alcotest.to_alcotest test_profiler_transparent;
  ]
