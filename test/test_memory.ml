(** Unit and property tests for the paged memory. *)

open Machine

let test_zero_initial () =
  let m = Memory.create Little in
  Alcotest.(check int64) "fresh memory reads zero" 0L
    (Memory.read m ~addr:0xDEAD_BEEFL ~width:8);
  Alcotest.(check int) "reads allocate on demand" 1 (Memory.page_count m)

let test_endianness () =
  let little = Memory.create Little and big = Memory.create Big in
  Memory.write little ~addr:0x100L ~width:4 0x11223344L;
  Memory.write big ~addr:0x100L ~width:4 0x11223344L;
  Alcotest.(check int) "little LSB first" 0x44 (Memory.read_byte little 0x100L);
  Alcotest.(check int) "big MSB first" 0x11 (Memory.read_byte big 0x100L);
  Alcotest.(check int64) "little readback" 0x11223344L
    (Memory.read little ~addr:0x100L ~width:4);
  Alcotest.(check int64) "big readback" 0x11223344L
    (Memory.read big ~addr:0x100L ~width:4)

let test_page_spanning () =
  let m = Memory.create Little in
  (* 4096-byte pages; write an 8-byte value across the boundary *)
  Memory.write m ~addr:0xFFCL ~width:8 0x0102030405060708L;
  Alcotest.(check int64) "read back across pages" 0x0102030405060708L
    (Memory.read m ~addr:0xFFCL ~width:8);
  Alcotest.(check int64) "partial low" 0x05060708L
    (Memory.read m ~addr:0xFFCL ~width:4);
  Alcotest.(check int64) "partial high" 0x01020304L
    (Memory.read m ~addr:0x1000L ~width:4)

let test_signed_reads () =
  let m = Memory.create Little in
  Memory.write m ~addr:0L ~width:1 0x80L;
  Alcotest.(check int64) "sign-extended byte" (-128L)
    (Memory.read_signed m ~addr:0L ~width:1);
  Alcotest.(check int64) "zero-extended byte" 0x80L (Memory.read m ~addr:0L ~width:1);
  Memory.write m ~addr:8L ~width:4 0xFFFFFFFFL;
  Alcotest.(check int64) "sign-extended word" (-1L)
    (Memory.read_signed m ~addr:8L ~width:4)

let test_bad_width () =
  let m = Memory.create Little in
  Alcotest.check_raises "width 3 rejected"
    (Invalid_argument "Memory: unsupported width 3") (fun () ->
      ignore (Memory.read m ~addr:0L ~width:3))

let test_load_dump () =
  let m = Memory.create Big in
  let b = Bytes.of_string "hello, memory" in
  Memory.load_bytes m 0x4000L b;
  Alcotest.(check string) "dump equals load" "hello, memory"
    (Bytes.to_string (Memory.dump_bytes m 0x4000L (Bytes.length b)))

let test_clear () =
  let m = Memory.create Little in
  Memory.write m ~addr:0x10L ~width:8 42L;
  Memory.clear m;
  Alcotest.(check int) "no pages" 0 (Memory.page_count m);
  Alcotest.(check int64) "cleared" 0L (Memory.read m ~addr:0x10L ~width:8)

(* The generation counter is the revalidation token for external page
   caches (the per-site TLBs in Semir.Compile): it must move whenever a
   cached page pointer could have gone stale. *)
let test_generation () =
  let m = Memory.create Little in
  let g0 = Memory.generation m in
  Memory.write m ~addr:0x10L ~width:8 42L;
  Alcotest.(check int) "plain writes keep generation" g0 (Memory.generation m);
  Memory.clear m;
  Alcotest.(check bool) "clear bumps generation" true (Memory.generation m > g0);
  let g1 = Memory.generation m in
  Memory.note_code_page m 3;
  Alcotest.(check bool) "marking a code page bumps generation" true
    (Memory.generation m > g1);
  let g2 = Memory.generation m in
  Memory.note_code_page m 3;
  Alcotest.(check int) "re-marking the same page is idempotent" g2
    (Memory.generation m);
  Alcotest.(check bool) "marked page is a code page" true
    (Memory.is_code_page m 3);
  Alcotest.(check bool) "unmarked page is not" false (Memory.is_code_page m 4)

let test_code_write_hook () =
  let m = Memory.create Little in
  let page = 0x1000 lsr Memory.page_bits in
  let hits = ref [] in
  Memory.add_code_write_hook m (fun idx -> hits := idx :: !hits);
  Memory.write m ~addr:0x1008L ~width:4 1L;
  Alcotest.(check int) "no hook before the page is marked" 0 (List.length !hits);
  Memory.note_code_page m page;
  Memory.write m ~addr:0x1008L ~width:4 2L;
  Alcotest.(check (list int)) "hook fires on marked page" [ page ] !hits;
  Memory.write_byte m 0x1001L 7;
  Alcotest.(check int) "byte stores fire too" 2 (List.length !hits);
  Memory.write m ~addr:0x2000L ~width:8 3L;
  Alcotest.(check int) "other pages stay silent" 2 (List.length !hits);
  (* Hooks compose: a second observer sees the same writes. *)
  let second = ref 0 in
  Memory.add_code_write_hook m (fun _ -> incr second);
  Memory.write m ~addr:0x1000L ~width:4 4L;
  Alcotest.(check int) "first hook still active" 3 (List.length !hits);
  Alcotest.(check int) "second hook sees the write" 1 !second;
  (* clear drops the code-page set (but keeps the hooks installed). *)
  Memory.clear m;
  Memory.write m ~addr:0x1008L ~width:4 5L;
  Alcotest.(check int) "no hook after clear until re-marked" 3
    (List.length !hits);
  Alcotest.(check int64) "writes after clear land" 5L
    (Memory.read m ~addr:0x1008L ~width:4)

(* Property: value round-trips through write/read at every width, under
   both endiannesses, including page-spanning addresses. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"write/read round-trip" ~count:500
    QCheck.(
      triple (oneofl [ 1; 2; 4; 8 ]) (int_bound 0xFFFF) (map Int64.of_int int))
    (fun (width, off, v) ->
      let m =
        Memory.create (if off land 1 = 0 then Memory.Little else Memory.Big)
      in
      let addr = Int64.of_int (0xF00 + off) in
      Memory.write m ~addr ~width v;
      let expect = Semir.Value.zext v (8 * width) in
      Int64.equal (Memory.read m ~addr ~width) expect)

(* Property: non-overlapping writes do not interfere. *)
let prop_isolation =
  QCheck.Test.make ~name:"disjoint writes do not interfere" ~count:300
    QCheck.(triple (int_bound 1000) (int_bound 1000) (pair (map Int64.of_int int) (map Int64.of_int int)))
    (fun (a, b, (va, vb)) ->
      QCheck.assume (abs (a - b) >= 8);
      let m = Memory.create Little in
      let aa = Int64.of_int (0x1000 + a) and ab = Int64.of_int (0x1000 + b) in
      Memory.write m ~addr:aa ~width:8 va;
      Memory.write m ~addr:ab ~width:8 vb;
      Int64.equal (Memory.read m ~addr:aa ~width:8) va
      && Int64.equal (Memory.read m ~addr:ab ~width:8) vb)

let suite =
  [
    Alcotest.test_case "zero initial" `Quick test_zero_initial;
    Alcotest.test_case "endianness" `Quick test_endianness;
    Alcotest.test_case "page spanning" `Quick test_page_spanning;
    Alcotest.test_case "signed reads" `Quick test_signed_reads;
    Alcotest.test_case "bad width" `Quick test_bad_width;
    Alcotest.test_case "load/dump bytes" `Quick test_load_dump;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "generation counter" `Quick test_generation;
    Alcotest.test_case "code-write hooks" `Quick test_code_write_hook;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_isolation;
  ]
