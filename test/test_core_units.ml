(** Unit and property tests for the synthesizer's supporting modules:
    Slots, Liveness, Classify, Decoder (property), Detail and Emit. *)

let alpha () = Lazy.force Isa_alpha.Alpha.spec
let demo () = Lazy.force Demo_isa.spec

(* ----------------------------------------------------------------- *)
(* Slots                                                               *)
(* ----------------------------------------------------------------- *)

let test_slots_partition () =
  let spec = demo () in
  Array.iter
    (fun (bs : Lis.Spec.buildset) ->
      let s = Specsim.Slots.make spec bs in
      let n = Lis.Spec.n_cells spec in
      Alcotest.(check int)
        (bs.bs_name ^ ": slots partition the cells")
        n
        (s.di_size + s.scratch_size);
      (* every visible cell has a DI slot, every hidden cell none *)
      Array.iteri
        (fun c visible ->
          let has_slot = s.di_slot_of_cell.(c) >= 0 in
          if has_slot <> visible then
            Alcotest.failf "%s: cell %s slot/visibility mismatch" bs.bs_name
              (Lis.Spec.cell_name spec c))
        bs.bs_visible)
    spec.buildsets

let prop_slots_random_visibility =
  QCheck.Test.make ~count:100 ~name:"slot maps are dense and disjoint"
    QCheck.(list_of_size (QCheck.Gen.return 9) bool)
    (fun vis ->
      let spec = demo () in
      let bs0 = spec.buildsets.(0) in
      let bs = { bs0 with bs_visible = Array.of_list vis } in
      let s = Specsim.Slots.make spec bs in
      (* DI slots are exactly 0..di_size-1, each used once *)
      let seen = Array.make (max s.di_size 1) 0 in
      Array.iter
        (fun slot -> if slot >= 0 then seen.(slot) <- seen.(slot) + 1)
        s.di_slot_of_cell;
      Array.for_all (fun c -> c <= 1) seen
      && Array.to_list seen |> List.filter (fun c -> c = 1) |> List.length
         = s.di_size)

(* ----------------------------------------------------------------- *)
(* Liveness                                                            *)
(* ----------------------------------------------------------------- *)

let test_liveness_clean_on_canonical () =
  let spec = alpha () in
  Array.iter
    (fun (bs : Lis.Spec.buildset) ->
      Alcotest.(check (list (triple string string string)))
        (bs.bs_name ^ " has no hidden crossings")
        []
        (Specsim.Liveness.summarize (Specsim.Liveness.check spec bs)))
    spec.buildsets

let test_liveness_detects_all_crossings () =
  (* Step entrypoints with Min visibility: operand values and ids cross *)
  let spec = demo () in
  let step = Lis.Spec.find_buildset spec "step_all" in
  let bad = { step with bs_visible = Array.map (fun _ -> false) step.bs_visible } in
  let v = Specsim.Liveness.summarize (Specsim.Liveness.check spec bad) in
  Alcotest.(check bool) "several crossings found" true (List.length v >= 4);
  Alcotest.(check bool) "operand id crossing reported" true
    (List.exists (fun (c, _, _) -> c = "ra_id") v)

(* ----------------------------------------------------------------- *)
(* Classify                                                            *)
(* ----------------------------------------------------------------- *)

let test_classify_alpha () =
  let spec = alpha () in
  let kinds = Specsim.Classify.of_spec spec in
  let k name = kinds.((Lis.Spec.find_instr spec name).i_index) in
  Alcotest.(check bool) "LDQ is load" true (k "LDQ").is_load;
  Alcotest.(check bool) "LDQ not store" false (k "LDQ").is_store;
  Alcotest.(check bool) "STQ is store" true (k "STQ").is_store;
  Alcotest.(check bool) "BEQ is branch" true (k "BEQ").is_branch;
  Alcotest.(check bool) "ADDQ is none" false
    ((k "ADDQ").is_load || (k "ADDQ").is_store || (k "ADDQ").is_branch);
  Alcotest.(check bool) "CALL_PAL is syscall" true (k "CALL_PAL").is_syscall;
  Alcotest.(check bool) "JMP is branch" true (k "JMP").is_branch;
  Alcotest.(check int) "ADDQ has one dest" 1 (Array.length (k "ADDQ").dest_regs);
  Alcotest.(check int) "ADDQ has two sources" 2 (Array.length (k "ADDQ").src_regs)

let test_classify_arm () =
  let spec = Lazy.force Isa_arm.Arm.spec in
  let kinds = Specsim.Classify.of_spec spec in
  let k name = kinds.((Lis.Spec.find_instr spec name).i_index) in
  Alcotest.(check bool) "LDR_IMM is load" true (k "LDR_IMM").is_load;
  Alcotest.(check bool) "STRB_REG is store" true (k "STRB_REG").is_store;
  Alcotest.(check bool) "B is branch" true (k "B").is_branch;
  Alcotest.(check bool) "BL is branch" true (k "BL").is_branch;
  Alcotest.(check bool) "SWI is syscall (after OS override)" true
    (k "SWI").is_syscall

(* ----------------------------------------------------------------- *)
(* Decoder properties                                                  *)
(* ----------------------------------------------------------------- *)

(* For a random instruction of the spec and random bits in the don't-care
   positions, the decoder must return an instruction whose (mask, match)
   actually matches the encoding. The encoding construction is the
   shared {!Gen_common.encoding_with_noise} — the same one the fuzzer
   generates whole programs with. *)
let prop_decoder isa_name spec_lazy =
  QCheck.Test.make ~count:500
    ~name:(Printf.sprintf "%s: decode returns a matching instruction" isa_name)
    QCheck.(pair small_nat (map Int64.of_int int))
    (fun (pick, noise) ->
      let spec = Lazy.force spec_lazy in
      let d = Specsim.Decoder.make spec in
      let i = spec.instrs.(pick mod Array.length spec.instrs) in
      let enc = Gen_common.encoding_with_noise spec i noise in
      let idx = Specsim.Decoder.decode d enc in
      idx >= 0
      &&
      let hit = spec.instrs.(idx) in
      Int64.equal (Int64.logand enc hit.i_mask) hit.i_match)

let test_decoder_bucket_quality () =
  (* the decode key keeps candidate lists manageable *)
  List.iter
    (fun (t : Workload.target) ->
      let spec = Lazy.force t.spec in
      let d = Specsim.Decoder.make spec in
      Alcotest.(check bool)
        (t.tname ^ ": bucket size bounded")
        true
        (Specsim.Decoder.max_bucket d <= 64))
    Workload.targets

(* ----------------------------------------------------------------- *)
(* Detail                                                              *)
(* ----------------------------------------------------------------- *)

let test_detail_names () =
  Alcotest.(check string) "name" "Block/Min/No"
    (Specsim.Detail.to_string
       { semantic = Block; informational = Min; speculation = false });
  Alcotest.(check string) "buildset name" "step_all_spec"
    (Specsim.Detail.buildset_name
       { semantic = Step; informational = All; speculation = true });
  Alcotest.(check int) "twelve interfaces" 12
    (List.length Specsim.Detail.table2_interfaces)

let test_detail_lis_parses () =
  (* the generated buildset text must itself be valid LIS *)
  let decls =
    Lis.Parser.parse ~file:"generated.lis"
      (Specsim.Detail.canonical_buildset_file ())
  in
  Alcotest.(check int) "twelve buildset declarations" 12 (List.length decls)

(* ----------------------------------------------------------------- *)
(* Emit                                                                *)
(* ----------------------------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_emit_structure () =
  let spec = demo () in
  let src = Specsim.Emit.buildset_to_ocaml spec "one_all" in
  Alcotest.(check bool) "has per-instruction functions" true
    (contains src "let add_seg");
  Alcotest.(check bool) "has dispatch tables" true (contains src "_table = [|");
  Alcotest.(check bool) "mentions cells by name" true
    (contains src "effective_addr")

let test_emit_reflects_visibility () =
  let spec = demo () in
  let all = Specsim.Emit.buildset_to_ocaml spec "one_all" in
  let min = Specsim.Emit.buildset_to_ocaml spec "one_min" in
  Alcotest.(check bool) "All stores into DI" true (contains all "fr.di.(");
  Alcotest.(check bool) "Min never stores into DI" false (contains min "fr.di.(");
  Alcotest.(check bool) "Min keeps needed values in scratch" true
    (contains min "fr.scratch.(");
  (* the opclass decode-information store is dead at Min and eliminated *)
  Alcotest.(check bool) "All records opclass" true (contains all "opclass");
  Alcotest.(check bool) "Min eliminates the opclass store" false
    (contains min "opclass")

let test_emit_step_has_more_segments () =
  let spec = demo () in
  let one = Specsim.Emit.buildset_to_ocaml spec "one_all" in
  let step = Specsim.Emit.buildset_to_ocaml spec "step_all" in
  let count_tables s =
    let rec go i acc =
      match String.index_from_opt s i '|' with
      | Some j when j + 1 < String.length s && s.[j + 1] = ']' -> go (j + 2) (acc + 1)
      | Some j -> go (j + 1) acc
      | None -> acc
    in
    go 0 0
  in
  Alcotest.(check bool) "step emits more dispatch tables" true
    (count_tables step > count_tables one)

let suite =
  [
    Alcotest.test_case "slots partition" `Quick test_slots_partition;
    QCheck_alcotest.to_alcotest prop_slots_random_visibility;
    Alcotest.test_case "liveness clean on canonical" `Quick
      test_liveness_clean_on_canonical;
    Alcotest.test_case "liveness detects crossings" `Quick
      test_liveness_detects_all_crossings;
    Alcotest.test_case "classify alpha" `Quick test_classify_alpha;
    Alcotest.test_case "classify arm" `Quick test_classify_arm;
    QCheck_alcotest.to_alcotest (prop_decoder "alpha" Isa_alpha.Alpha.spec);
    QCheck_alcotest.to_alcotest (prop_decoder "arm" Isa_arm.Arm.spec);
    QCheck_alcotest.to_alcotest (prop_decoder "ppc" Isa_ppc.Ppc.spec);
    QCheck_alcotest.to_alcotest (prop_decoder "riscv" Isa_riscv.Riscv.spec);
    Alcotest.test_case "decoder bucket quality" `Quick test_decoder_bucket_quality;
    Alcotest.test_case "detail names" `Quick test_detail_names;
    Alcotest.test_case "generated buildsets parse" `Quick test_detail_lis_parses;
    Alcotest.test_case "emit structure" `Quick test_emit_structure;
    Alcotest.test_case "emit reflects visibility" `Quick test_emit_reflects_visibility;
    Alcotest.test_case "emit step segments" `Quick test_emit_step_has_more_segments;
  ]
