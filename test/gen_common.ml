(** Shared test harnesses and generators.

    These used to live as per-file copies in test_dispatch,
    test_isa_props and test_core_units; the generator primitives now
    belong to the fuzzer (lib/fuzz) and this module owns the harnesses
    the suites build on them.

    Seed convention (shared with [lisim fuzz] and [lisim inject]): one
    64-bit campaign seed, stretched with the splitmix finalizer
    ({!Inject.Prng.derive}) into every per-purpose stream. For the test
    binary the seed comes from the [LISIM_SEED] environment variable
    (default 42); {!init_seed} derives the qcheck stream from it and
    prints the value, so any qcheck failure is reproducible with
    [LISIM_SEED=<printed value> dune runtest]. An explicit [QCHECK_SEED]
    in the environment still wins, since that is qcheck's own replay
    knob. *)

let seed_env = "LISIM_SEED"
let default_seed = 42L

let campaign_seed () =
  match Sys.getenv_opt seed_env with
  | None | Some "" -> default_seed
  | Some s -> (
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> Printf.ksprintf failwith "%s=%S is not an integer" seed_env s)

(** Install the derived qcheck seed (unless [QCHECK_SEED] is already
    set) and print the campaign seed. Must run before [Alcotest.run]
    — qcheck reads its environment lazily at the first test. *)
let init_seed () =
  let seed = campaign_seed () in
  (match Sys.getenv_opt "QCHECK_SEED" with
  | Some s when s <> "" -> ()
  | _ ->
    let q =
      Int64.to_int
        (Int64.logand (Inject.Prng.derive ~seed ~salt:0) 0x3FFFFFFFL)
    in
    Unix.putenv "QCHECK_SEED" (string_of_int q));
  Printf.printf "lisim tests: campaign seed %Ld (%s=%Ld reproduces)\n%!" seed
    seed_env seed

(* ----------------------------------------------------------------- *)
(* Spec-derived encoding generators (re-exported from the fuzzer)      *)
(* ----------------------------------------------------------------- *)

(** [encoding_with_noise spec i noise] — an encoding of instruction [i]
    with every decoder-free bit taken from [noise]. *)
let encoding_with_noise = Fuzz.Gen.encoding_with_noise

let free_runs = Fuzz.Gen.free_runs

(* ----------------------------------------------------------------- *)
(* Demo-ISA program harness                                            *)
(* ----------------------------------------------------------------- *)

let demo_spec () = Lazy.force Demo_isa.spec

(** Run [program] under buildset [bs]; returns the interface (for stats)
    plus (exit status, instructions retired). [patch] runs after the
    image is loaded, before execution — used to pre-stage data. *)
let run_demo ?chain ?site_cache ?(patch = fun _ -> ()) bs program =
  let spec = demo_spec () in
  let iface = Specsim.Synth.make ?chain ?site_cache spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None -> Alcotest.fail "demo ISA has no abi");
  Demo_isa.load_program st ~base:0x1000L program;
  patch st;
  let budget = 1_000_000 in
  let executed = Specsim.Iface.run_n iface budget in
  if executed >= budget && not st.halted then
    Alcotest.fail "program did not terminate";
  (iface, Machine.State.exit_status st, st.instr_count)

(* ----------------------------------------------------------------- *)
(* Single-instruction harness (ISA semantics property tests)           *)
(* ----------------------------------------------------------------- *)

(** One interface per spec, shared across all properties of a suite —
    synthesis is the expensive part, resets are cheap. *)
let one_all spec = lazy (Specsim.Synth.make (Lazy.force spec) "one_all")

(** [run_single iface ~pre word] stages register state with [pre],
    places the 4-byte instruction [word] at 0x1000, runs exactly one
    instruction and returns the machine state for inspection. *)
let run_single (iface : Specsim.Iface.t Lazy.t) ~pre word : Machine.State.t =
  let iface = Lazy.force iface in
  let st = iface.st in
  pre st;
  Machine.Memory.write st.mem ~addr:0x1000L ~width:4 word;
  Machine.State.reset st ~pc:0x1000L;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  iface.run_one di;
  st

(* ----------------------------------------------------------------- *)
(* Random terminating VIR loops                                        *)
(* ----------------------------------------------------------------- *)

(** Small terminating VIR programs: a random straight-line body inside a
    counted loop, with aligned word loads/stores into a scratch buffer,
    exiting with the accumulator's low byte. *)
let vir_of_choices (choices : int list) ~iters : Vir.Lang.program =
  let open Vir.Lang in
  let body =
    List.map
      (fun n ->
        let d = 1 + ((n lsr 4) land 3) in
        let a = 1 + ((n lsr 6) land 3) in
        let b = 1 + ((n lsr 8) land 3) in
        let imm = (n lsr 10) land 0xFFF in
        match n land 7 with
        | 0 -> Add (d, a, b)
        | 1 -> Sub (d, a, b)
        | 2 -> Mul (d, a, b)
        | 3 -> Xor_ (d, a, b)
        | 4 -> Addi (d, a, imm - 2048)
        | 5 -> Shli (d, a, imm land 15)
        | 6 -> Stw (a, 5, 4 * (imm land 31))
        | _ -> Ldw (d, 5, 4 * (imm land 31)))
      choices
  in
  [
    Li (1, 3l); Li (2, 5l); Li (3, 7l); Li (4, 11l);
    Li (5, 0x4000l) (* scratch buffer *);
    Li (6, Int32.of_int iters);
    Li (7, 0l) (* accumulator *);
    Li (8, 0l);
    Label "loop";
  ]
  @ body
  @ [
      Add (7, 7, 1);
      Xor_ (7, 7, 2);
      Addi (6, 6, -1);
      Bcond (Ne, 6, 8, "loop");
      Andi (7, 7, 0xff);
      Li (0, 0l);
      Mv (1, 7);
      Sys;
    ]

let outcome_pair (o : Workload.outcome) = (o.exit_status, o.output)
