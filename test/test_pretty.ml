(** Pretty-printer round trip: printing a parsed description and parsing
    it again must yield an equivalent resolved specification, for every
    shipped ISA. This pins down both the printer and the parser. *)

let resolve sources = Lis.Sema.load sources

let reprint (sources : Lis.Ast.source list) : Lis.Ast.source list =
  List.map
    (fun (s : Lis.Ast.source) ->
      let decls = Lis.Parser.parse ~file:s.src_name s.src_text in
      { s with src_text = Lis.Pretty.to_string decls })
    sources

let check_same_spec name (a : Lis.Spec.t) (b : Lis.Spec.t) =
  Alcotest.(check string) (name ^ ": isa name") a.name b.name;
  Alcotest.(check int) (name ^ ": wordsize") a.wordsize b.wordsize;
  Alcotest.(check bool) (name ^ ": endian") true (a.endian = b.endian);
  Alcotest.(check int)
    (name ^ ": instruction count")
    (Array.length a.instrs) (Array.length b.instrs);
  Alcotest.(check int) (name ^ ": cells") (Lis.Spec.n_cells a) (Lis.Spec.n_cells b);
  (* Compare span-stripped: spans legitimately differ after reprinting. *)
  let cell_key (c : Lis.Spec.cell_info) = (c.cell_name, c.kind) in
  Alcotest.(check bool) (name ^ ": cells table") true
    (Array.map cell_key a.cells = Array.map cell_key b.cells);
  Alcotest.(check bool) (name ^ ": register classes") true
    (a.reg_classes = b.reg_classes);
  Alcotest.(check bool) (name ^ ": sequence") true (a.sequence = b.sequence);
  Alcotest.(check bool) (name ^ ": abi") true (a.abi = b.abi);
  Array.iteri
    (fun i (ia : Lis.Spec.instr) ->
      let ib = b.instrs.(i) in
      if
        not
          (ia.i_name = ib.i_name && ia.i_match = ib.i_match
         && ia.i_mask = ib.i_mask && ia.i_operands = ib.i_operands
         && ia.i_decode = ib.i_decode && ia.i_read = ib.i_read
         && ia.i_writeback = ib.i_writeback
          && List.sort compare ia.i_user = List.sort compare ib.i_user)
      then Alcotest.failf "%s: instruction %s differs after round trip" name
        ia.i_name)
    a.instrs;
  Array.iteri
    (fun i (ba : Lis.Spec.buildset) ->
      let bb = b.buildsets.(i) in
      if
        not
          (ba.bs_name = bb.bs_name
          && ba.bs_speculation = bb.bs_speculation
          && ba.bs_block = bb.bs_block
          && ba.bs_visible = bb.bs_visible
          && ba.bs_entrypoints = bb.bs_entrypoints)
      then Alcotest.failf "%s: buildset %s differs after round trip" name
        ba.bs_name)
    a.buildsets

let check_roundtrip name sources () =
  let original = resolve sources in
  let reprinted = resolve (reprint sources) in
  check_same_spec name original reprinted

(** A round-tripped simulator must also *behave* identically. *)
let test_behavioural_roundtrip () =
  let spec = resolve (reprint Isa_alpha.Alpha.sources) in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let k = List.hd Vir.Kernels.test_suite in
  let words = Isa_alpha.Alpha_asm.encode ~base:0x1000L k.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let _ = Specsim.Iface.run_n iface 10_000_000 in
  let expected = Vir.Lang.run k.program in
  Alcotest.(check (option int)) "exit through reprinted spec"
    (Some expected.exit_status)
    (Option.map (fun s -> s land 0xff) (Machine.State.exit_status st));
  Alcotest.(check string) "output" expected.output (Machine.Os_emu.output os)

let suite =
  [
    Alcotest.test_case "roundtrip demo" `Quick
      (check_roundtrip "demo" Demo_isa.sources);
    Alcotest.test_case "roundtrip alpha" `Quick
      (check_roundtrip "alpha" Isa_alpha.Alpha.sources);
    Alcotest.test_case "roundtrip arm" `Quick
      (check_roundtrip "arm" Isa_arm.Arm.sources);
    Alcotest.test_case "roundtrip ppc" `Quick
      (check_roundtrip "ppc" Isa_ppc.Ppc.sources);
    Alcotest.test_case "roundtrip riscv" `Quick
      (check_roundtrip "riscv" Isa_riscv.Riscv.sources);
    Alcotest.test_case "behavioural roundtrip" `Quick test_behavioural_roundtrip;
  ]
