(** RISC-V ISA tests: per-instruction semantics via hand-assembled
    snippets — including the RVC parcels and their decode-priority edge
    cases — and differential validation of every kernel against the VIR
    reference executor.

    The snippet harness differs from the other ISAs' in one way: parcels
    carry their own width (2 or 4 bytes), so programs are laid out at
    running offsets rather than a uniform 4-byte stride. *)

let spec () = Lazy.force Isa_riscv.Riscv.spec

(* ----------------------------------------------------------------- *)
(* Snippet harness: mixed-width parcels at running offsets            *)
(* ----------------------------------------------------------------- *)

(* A parcel is (width, encoding); [i2] tags an RVC half, [i4] a word. *)
let i2 w = (2, w)
let i4 w = (4, w)

let load_parcels st parcels =
  let off = ref 0x1000L in
  List.iter
    (fun (size, w) ->
      Machine.Memory.write st.Machine.State.mem ~addr:!off ~width:size w;
      off := Int64.add !off (Int64.of_int size))
    parcels

(* [steps] defaults to one per parcel; taken jumps land mid-list, so
   control-flow tests pass it explicitly. *)
let run_snippet ?(setup = fun _ -> ()) ?steps ~buildset parcels =
  let spec = spec () in
  let iface = Specsim.Synth.make spec buildset in
  let st = iface.st in
  setup st;
  load_parcels st parcels;
  Machine.State.reset st ~pc:0x1000L;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let n = match steps with Some n -> n | None -> List.length parcels in
  for _ = 1 to n do
    if not st.halted then iface.run_one di
  done;
  st

let reg st i = Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i
let set_reg st i v = Machine.Regfile.write st.Machine.State.regs ~cls:0 ~idx:i v

(* convention: result in x1; x2=7, x3=-3 (32-bit), x4=0x12345678 *)
let check_alu name parcels expected () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st ->
        set_reg st 2 7L;
        set_reg st 3 0xFFFFFFFDL;
        set_reg st 4 0x12345678L)
      parcels
  in
  Alcotest.(check int64) name expected (reg st 1)

open Isa_riscv.Riscv_asm

let alu_cases =
  [
    ("add", [ i4 (rtype ~funct7:0 ~f3:0 ~rd:1 ~rs1:2 ~rs2:3) ], 4L);
    ("sub", [ i4 (rtype ~funct7:0x20 ~f3:0 ~rd:1 ~rs1:2 ~rs2:3) ], 10L);
    ("sll by reg", [ i4 (rtype ~funct7:0 ~f3:1 ~rd:1 ~rs1:2 ~rs2:2) ], 0x380L);
    (* SLT sees -3 < 7; SLTU sees 0xFFFFFFFD > 7 *)
    ("slt signed", [ i4 (rtype ~funct7:0 ~f3:2 ~rd:1 ~rs1:3 ~rs2:2) ], 1L);
    ("sltu unsigned", [ i4 (rtype ~funct7:0 ~f3:3 ~rd:1 ~rs1:3 ~rs2:2) ], 0L);
    ("xor", [ i4 (rtype ~funct7:0 ~f3:4 ~rd:1 ~rs1:2 ~rs2:3) ], 0xFFFFFFFAL);
    ("srl on negative", [ i4 (rtype ~funct7:0 ~f3:5 ~rd:1 ~rs1:3 ~rs2:2) ],
      0x1FFFFFFL);
    ("sra on negative", [ i4 (rtype ~funct7:0x20 ~f3:5 ~rd:1 ~rs1:3 ~rs2:2) ],
      0xFFFFFFFFL);
    ("mul", [ i4 (rtype ~funct7:1 ~f3:0 ~rd:1 ~rs1:2 ~rs2:3) ], 0xFFFFFFEBL);
    ("or", [ i4 (rtype ~funct7:0 ~f3:6 ~rd:1 ~rs1:2 ~rs2:4) ], 0x1234567FL);
    ("and", [ i4 (rtype ~funct7:0 ~f3:7 ~rd:1 ~rs1:2 ~rs2:3) ], 5L);
    ("addi negative", [ i4 (addi ~rd:1 ~rs1:2 ~imm:(-10)) ], 0xFFFFFFFDL);
    ("slti negative imm", [ i4 (itype ~opc:0x13 ~f3:2 ~rd:1 ~rs1:3 ~imm:(-2)) ],
      1L);
    (* SLTIU's imm is sign-extended then compared unsigned: -1 = 0xFFFFFFFF *)
    ("sltiu imm -1", [ i4 (itype ~opc:0x13 ~f3:3 ~rd:1 ~rs1:3 ~imm:(-1)) ], 1L);
    ("xori", [ i4 (itype ~opc:0x13 ~f3:4 ~rd:1 ~rs1:4 ~imm:0xFF) ], 0x12345687L);
    ("andi", [ i4 (andi ~rd:1 ~rs1:4 ~imm:0xFF) ], 0x78L);
    ("slli", [ i4 (shifti ~funct7:0 ~f3:1 ~rd:1 ~rs1:2 ~sh:4) ], 0x70L);
    ("srli on negative", [ i4 (shifti ~funct7:0 ~f3:5 ~rd:1 ~rs1:3 ~sh:28) ],
      0xFL);
    ("srai on negative", [ i4 (shifti ~funct7:0x20 ~f3:5 ~rd:1 ~rs1:3 ~sh:4) ],
      0xFFFFFFFFL);
    ("lui", [ i4 (lui ~rd:1 ~imm20:0xABCDE) ], 0xABCDE000L);
  ]

(* SLT/SLTU at the sign boundary: 0x7FFFFFFF vs 0x80000000 *)
let test_slt_edges () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st ->
        set_reg st 2 0x7FFFFFFFL;
        set_reg st 3 0x80000000L)
      [
        i4 (rtype ~funct7:0 ~f3:2 ~rd:1 ~rs1:2 ~rs2:3) (* slt max, min *);
        i4 (rtype ~funct7:0 ~f3:3 ~rd:5 ~rs1:2 ~rs2:3) (* sltu max, min *);
        i4 (rtype ~funct7:0 ~f3:2 ~rd:6 ~rs1:3 ~rs2:2) (* slt min, max *);
      ]
  in
  Alcotest.(check int64) "0x7FFFFFFF < 0x80000000 signed" 0L (reg st 1);
  Alcotest.(check int64) "0x7FFFFFFF < 0x80000000 unsigned" 1L (reg st 5);
  Alcotest.(check int64) "0x80000000 < 0x7FFFFFFF signed" 1L (reg st 6)

let test_hardwired_x0 () =
  let st = run_snippet ~buildset:"one_all" [ i4 (addi ~rd:0 ~rs1:0 ~imm:5) ] in
  Alcotest.(check int64) "x0 still zero" 0L (reg st 0)

let test_auipc () =
  (* second AUIPC checks the pc used is the instruction's own *)
  let st =
    run_snippet ~buildset:"one_all"
      [
        i4 (Int64.of_int ((1 lsl 12) lor (1 lsl 7) lor 0x17));
        i4 (Int64.of_int ((2 lsl 12) lor (5 lsl 7) lor 0x17));
      ]
  in
  Alcotest.(check int64) "auipc at 0x1000" 0x2000L (reg st 1);
  Alcotest.(check int64) "auipc at 0x1004" 0x3004L (reg st 5)

(* ----------------------------------------------------------------- *)
(* Loads and stores: widths, sign-extension                           *)
(* ----------------------------------------------------------------- *)

let test_load_sign_extension () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st ->
        set_reg st 2 0x2000L;
        set_reg st 3 0x8BADF00DL)
      [
        i4 (stype ~f3:2 ~rs1:2 ~rs2:3 ~imm:16) (* sw *);
        i4 (load ~f3:0 ~rd:1 ~rs1:2 ~imm:16) (* lb: 0x0D *);
        i4 (load ~f3:0 ~rd:5 ~rs1:2 ~imm:19) (* lb: 0x8B sign-extends *);
        i4 (load ~f3:4 ~rd:6 ~rs1:2 ~imm:19) (* lbu: 0x8B zero-extends *);
        i4 (load ~f3:1 ~rd:7 ~rs1:2 ~imm:16) (* lh: 0xF00D sign-extends *);
        i4 (load ~f3:5 ~rd:8 ~rs1:2 ~imm:16) (* lhu *);
        i4 (load ~f3:2 ~rd:9 ~rs1:2 ~imm:16) (* lw *);
      ]
  in
  Alcotest.(check int64) "lb positive" 0x0DL (reg st 1);
  Alcotest.(check int64) "lb sign-extends" 0xFFFFFF8BL (reg st 5);
  Alcotest.(check int64) "lbu zero-extends" 0x8BL (reg st 6);
  Alcotest.(check int64) "lh sign-extends" 0xFFFFF00DL (reg st 7);
  Alcotest.(check int64) "lhu zero-extends" 0xF00DL (reg st 8);
  Alcotest.(check int64) "lw" 0x8BADF00DL (reg st 9)

let test_store_widths () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st ->
        set_reg st 2 0x2000L;
        set_reg st 3 0xDDCCBBAAL;
        set_reg st 4 0x11223344L)
      [
        i4 (stype ~f3:2 ~rs1:2 ~rs2:3 ~imm:0) (* sw whole word *);
        i4 (stype ~f3:0 ~rs1:2 ~rs2:4 ~imm:1) (* sb clobbers byte 1 *);
        i4 (stype ~f3:1 ~rs1:2 ~rs2:4 ~imm:2) (* sh clobbers bytes 2-3 *);
        i4 (load ~f3:2 ~rd:1 ~rs1:2 ~imm:0);
      ]
  in
  Alcotest.(check int64) "sb/sh merge little-endian" 0x334444AAL (reg st 1)

(* ----------------------------------------------------------------- *)
(* Control flow: branch offsets, JAL link, JALR LSB clearing          *)
(* ----------------------------------------------------------------- *)

let test_branch_forward () =
  (* beq x0,x0,+8 at 0x1000 skips the poison instruction at 0x1004 *)
  let st =
    run_snippet ~buildset:"one_all" ~steps:2
      [
        i4 (btype ~f3:0 ~rs1:0 ~rs2:0 ~off:8);
        i4 (addi ~rd:1 ~rs1:0 ~imm:99) (* skipped *);
        i4 (addi ~rd:5 ~rs1:0 ~imm:7) (* landed *);
      ]
  in
  Alcotest.(check int64) "skipped" 0L (reg st 1);
  Alcotest.(check int64) "landed" 7L (reg st 5)

let test_branch_backward () =
  (* bne at 0x1004 takes -4 back to the addi until x1 reaches 3 *)
  let st =
    run_snippet ~buildset:"one_all" ~steps:6
      ~setup:(fun st -> set_reg st 2 3L)
      [
        i4 (addi ~rd:1 ~rs1:1 ~imm:1);
        i4 (btype ~f3:1 ~rs1:1 ~rs2:2 ~off:(-4));
      ]
  in
  Alcotest.(check int64) "looped to 3" 3L (reg st 1);
  Alcotest.(check int64) "fell through" 0x1008L st.Machine.State.pc

let test_branch_not_taken () =
  let st =
    run_snippet ~buildset:"one_all" ~steps:1
      [ i4 (btype ~f3:0 ~rs1:0 ~rs2:0 ~off:8) ]
  in
  ignore st;
  (* beq x0,x0 is always taken; bne x0,x0 never is *)
  let st =
    run_snippet ~buildset:"one_all" ~steps:1
      [ i4 (btype ~f3:1 ~rs1:0 ~rs2:0 ~off:8) ]
  in
  Alcotest.(check int64) "bne x0,x0 falls through" 0x1004L st.Machine.State.pc

let test_jal () =
  let st =
    run_snippet ~buildset:"one_all" ~steps:1 [ i4 (jal ~rd:1 ~off:12) ]
  in
  Alcotest.(check int64) "link = pc+4" 0x1004L (reg st 1);
  Alcotest.(check int64) "target" 0x100CL st.Machine.State.pc

let test_jalr_clears_lsb () =
  (* rs1 + imm = 0x1009; the LSB must be cleared, landing on 0x1008 *)
  let st =
    run_snippet ~buildset:"one_all" ~steps:2
      ~setup:(fun st -> set_reg st 2 0x1005L)
      [
        i4 (jalr ~rd:1 ~rs1:2 ~imm:4);
        i4 (addi ~rd:5 ~rs1:0 ~imm:99) (* 0x1004: skipped *);
        i4 (addi ~rd:6 ~rs1:0 ~imm:1) (* 0x1008: landed *);
      ]
  in
  Alcotest.(check int64) "link" 0x1004L (reg st 1);
  Alcotest.(check int64) "skipped" 0L (reg st 5);
  Alcotest.(check int64) "LSB cleared, landed" 1L (reg st 6)

(* ----------------------------------------------------------------- *)
(* RVC parcels                                                        *)
(* ----------------------------------------------------------------- *)

let test_c_li_negative () =
  let st = run_snippet ~buildset:"one_all" [ i2 (c_li ~rd:1 ~imm:(-5)) ] in
  Alcotest.(check int64) "c.li sign-extends" 0xFFFFFFFBL (reg st 1);
  Alcotest.(check int64) "2-byte advance" 0x1002L st.Machine.State.pc

let test_c_addi () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st -> set_reg st 1 10L)
      [ i2 (c_addi ~rd:1 ~imm:(-3)); i2 (c_addi ~rd:1 ~imm:31) ]
  in
  Alcotest.(check int64) "two c.addi" 38L (reg st 1);
  Alcotest.(check int64) "pc after two halves" 0x1004L st.Machine.State.pc

let test_c_mv () =
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st -> set_reg st 2 7L)
      [ i2 (c_mv ~rd:1 ~rs2:2) ]
  in
  Alcotest.(check int64) "c.mv" 7L (reg st 1)

let test_c_jr_clears_lsb () =
  let st =
    run_snippet ~buildset:"one_all" ~steps:2
      ~setup:(fun st -> set_reg st 2 0x1007L)
      [
        i2 (c_jr ~rs1:2);
        i2 (c_li ~rd:5 ~imm:9) (* 0x1002: skipped *);
        i2 (c_li ~rd:6 ~imm:1) (* 0x1004: skipped *);
        i2 (c_li ~rd:7 ~imm:4) (* 0x1006: landed (LSB cleared) *);
      ]
  in
  Alcotest.(check int64) "skipped" 0L (reg st 5);
  Alcotest.(check int64) "landed" 4L (reg st 7)

let test_c_jr_decode_priority () =
  (* The C.JR encoding is C.MV's rs2=0 row: 0x8002 | rd<<7 must *jump*
     (C.JR through rd-as-rs1), not move x0 into rd. A C.MV reading would
     zero x1 and fall through to 0x1002. *)
  let raw = Int64.of_int (0x8002 lor (1 lsl 7)) in
  let st =
    run_snippet ~buildset:"one_all" ~steps:1
      ~setup:(fun st -> set_reg st 1 0x1008L)
      [ i2 raw ]
  in
  Alcotest.(check int64) "jumped, not moved" 0x1008L st.Machine.State.pc;
  Alcotest.(check int64) "rd untouched" 0x1008L (reg st 1)

let test_c_j () =
  let st =
    run_snippet ~buildset:"one_all" ~steps:2
      [
        i2 (c_j ~off:6) (* 0x1000 -> 0x1006 *);
        i2 (c_li ~rd:5 ~imm:9) (* skipped *);
        i2 (c_li ~rd:6 ~imm:9) (* skipped *);
        i2 (c_li ~rd:7 ~imm:3) (* 0x1006: landed *);
      ]
  in
  Alcotest.(check int64) "skipped" 0L (reg st 5);
  Alcotest.(check int64) "landed" 3L (reg st 7);
  (* backward: c.j -2 from 0x1002 lands on the parcel before it *)
  let st =
    run_snippet ~buildset:"one_all" ~steps:3
      [ i2 (c_addi ~rd:1 ~imm:1); i2 (c_j ~off:(-2)) ]
  in
  Alcotest.(check int64) "looped back" 2L (reg st 1)

let test_c_lw_sw () =
  (* the x8-x15 window; uimm 68 exercises the scattered bit 6 *)
  let st =
    run_snippet ~buildset:"one_all"
      ~setup:(fun st ->
        set_reg st 8 0x2000L;
        set_reg st 9 0xCAFEBABEL)
      [
        i2 (c_sw ~rs2p:1 ~rs1p:0 ~uimm:68) (* mem[x8+68] = x9 *);
        i2 (c_lw ~rdp:2 ~rs1p:0 ~uimm:68) (* x10 = mem[x8+68] *);
        i4 (load ~f3:2 ~rd:1 ~rs1:8 ~imm:68) (* cross-check via lw *);
      ]
  in
  Alcotest.(check int64) "c.lw roundtrip" 0xCAFEBABEL (reg st 10);
  Alcotest.(check int64) "agrees with lw" 0xCAFEBABEL (reg st 1)

(* ----------------------------------------------------------------- *)
(* Mixed strides through the block engine                             *)
(* ----------------------------------------------------------------- *)

(* The same mixed 2/4-byte straight-line block must produce identical
   architectural state under the one-call and block interfaces: the
   block builder has to honour per-site strides, not assume 4. *)
let test_mixed_stride_block () =
  let parcels =
    [
      i2 (c_li ~rd:1 ~imm:5);
      i4 (addi ~rd:2 ~rs1:1 ~imm:0x111);
      i2 (c_addi ~rd:1 ~imm:3);
      i4 (rtype ~funct7:0 ~f3:0 ~rd:3 ~rs1:1 ~rs2:2);
      i2 (c_mv ~rd:5 ~rs2:3);
      i2 (c_j ~off:0) (* self-loop: terminates the block at 0x100E *);
    ]
  in
  let run buildset =
    let spec = spec () in
    let iface = Specsim.Synth.make spec buildset in
    let st = iface.st in
    load_parcels st parcels;
    Machine.State.reset st ~pc:0x1000L;
    ignore (Specsim.Iface.run_n iface (List.length parcels));
    st
  in
  let a = run "one_all" and b = run "block_min" in
  List.iter
    (fun i ->
      Alcotest.(check int64)
        (Printf.sprintf "x%d one_all = block_min" i)
        (reg a i) (reg b i))
    [ 1; 2; 3; 5 ];
  Alcotest.(check int64) "pc advanced by 14 bytes" 0x100EL
    b.Machine.State.pc

(* ----------------------------------------------------------------- *)
(* Differential: kernels vs the VIR reference                         *)
(* ----------------------------------------------------------------- *)

let check_kernel bs (k : Vir.Kernels.sized) () =
  let expected = Workload.reference k.program in
  let got = Workload.run ~budget:50_000_000 Workload.riscv ~buildset:bs k.program in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status got.exit_status;
  Alcotest.(check string) (k.kname ^ " output") expected.output got.output

let suite =
  List.map
    (fun (name, parcels, expected) ->
      Alcotest.test_case name `Quick (check_alu name parcels expected))
    alu_cases
  @ [
      Alcotest.test_case "slt/sltu sign boundary" `Quick test_slt_edges;
      Alcotest.test_case "hardwired x0" `Quick test_hardwired_x0;
      Alcotest.test_case "auipc" `Quick test_auipc;
      Alcotest.test_case "load sign-extension" `Quick test_load_sign_extension;
      Alcotest.test_case "store widths" `Quick test_store_widths;
      Alcotest.test_case "branch forward" `Quick test_branch_forward;
      Alcotest.test_case "branch backward" `Quick test_branch_backward;
      Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
      Alcotest.test_case "jal links" `Quick test_jal;
      Alcotest.test_case "jalr clears LSB" `Quick test_jalr_clears_lsb;
      Alcotest.test_case "c.li negative" `Quick test_c_li_negative;
      Alcotest.test_case "c.addi" `Quick test_c_addi;
      Alcotest.test_case "c.mv" `Quick test_c_mv;
      Alcotest.test_case "c.jr clears LSB" `Quick test_c_jr_clears_lsb;
      Alcotest.test_case "c.jr beats c.mv on rs2=0" `Quick
        test_c_jr_decode_priority;
      Alcotest.test_case "c.j offsets" `Quick test_c_j;
      Alcotest.test_case "c.lw/c.sw window" `Quick test_c_lw_sw;
      Alcotest.test_case "mixed-stride block" `Quick test_mixed_stride_block;
    ]
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "one_all" k))
      Vir.Kernels.test_suite
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel (block) " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "block_min" k))
      Vir.Kernels.test_suite
