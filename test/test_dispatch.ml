(** Tests for the block engine's translation-cache machinery: direct
    block chaining, the shared per-(instruction, encoding) site cache,
    per-site memory fast paths, self-modifying-code invalidation, and
    the stride handling of block construction (via {!Fuzz.Tiny}, the
    2-byte-instruction toy ISA — a spec whose [instrsize] differs from
    the demo's 4). Program harnesses live in {!Gen_common}. *)

let run_demo = Gen_common.run_demo

(* ----------------------------------------------------------------- *)
(* Chaining and site-cache A/B                                         *)
(* ----------------------------------------------------------------- *)

(* A counted loop whose back edge re-enters the middle of the entry
   block, so the loop-head block is a strict suffix of the entry block:
   its sites must come from the shared site cache, and after the first
   iteration every block-to-block transfer should ride a chain link. *)
let loop_program =
  Demo_isa.
    [
      addi ~ra:31 ~imm:10 ~rc:1 (* r1 = n *);
      addi ~ra:31 ~imm:0 ~rc:2 (* r2 = acc *);
      (* loop: *)
      add ~ra:2 ~rb:1 ~rc:2 (* acc += r1 *);
      addi ~ra:1 ~imm:(-1) ~rc:1;
      beqz ~ra:1 ~off:1 (* done when r1 == 0 *);
      br ~off:(-4) (* back to loop *);
      addi ~ra:31 ~imm:0 ~rc:0 (* nr = sys_exit *);
      add ~ra:2 ~rb:31 ~rc:1 (* arg0 = acc *);
      sys;
    ]

let test_chain_and_site_cache () =
  let iface, status, count = run_demo "block_min" loop_program in
  Alcotest.(check (option int)) "exit status" (Some 55) status;
  let s = iface.stats in
  Alcotest.(check bool)
    "chain links taken" true
    (s.Specsim.Iface.chain_taken > 0);
  Alcotest.(check bool)
    "some chain misses (cold edges)" true
    (s.Specsim.Iface.chain_miss > 0);
  Alcotest.(check bool)
    "site cache reused compiled sites" true
    (s.Specsim.Iface.site_cache_hits >= 3);
  (* Disabling both caches must reproduce the same architectural run,
     with the new counters pinned at zero. *)
  let iface', status', count' =
    run_demo ~chain:false ~site_cache:false "block_min" loop_program
  in
  Alcotest.(check (option int)) "exit status (caches off)" (Some 55) status';
  Alcotest.(check int64) "instruction counts agree" count count';
  let s' = iface'.stats in
  Alcotest.(check int) "no chain hits when disabled" 0
    s'.Specsim.Iface.chain_taken;
  Alcotest.(check int) "no chain misses when disabled" 0
    s'.Specsim.Iface.chain_miss;
  Alcotest.(check int) "no site-cache hits when disabled" 0
    s'.Specsim.Iface.site_cache_hits

(* One-mode interfaces must never touch the block machinery. *)
let test_one_mode_counters_stay_zero () =
  let iface, status, _ = run_demo "one_all" loop_program in
  Alcotest.(check (option int)) "exit status" (Some 55) status;
  let s = iface.stats in
  Alcotest.(check int) "no chaining in One mode" 0 s.Specsim.Iface.chain_taken;
  Alcotest.(check int) "no site cache in One mode" 0
    s.Specsim.Iface.site_cache_hits

(* ----------------------------------------------------------------- *)
(* Self-modifying code                                                 *)
(* ----------------------------------------------------------------- *)

(* The program stores over one of its own loop-body instructions and
   must observe the new semantics on the next iteration. The
   replacement pair (the rewritten ADDI plus the unchanged ADD that
   shares its 8-byte store) is staged at 0x800 by the harness.

     0x1000  addi r5 = 2            loop counter
     0x1004  ldq  r7 = [0x800]      replacement pair
     0x1008  addi r2 = 5            <- rewritten to addi r2 = 99
     0x100c  add  r3 += r2
     0x1010  stq  [0x1008] = r7     the self-modifying store
     0x1014  addi r5 -= 1
     0x1018  beqz r5, +1
     0x101c  br   -7                back to 0x1004
     0x1020  addi r0 = 0            sys_exit
     0x1024  add  r1 = r3
     0x1028  sys

   Iteration 1 adds 5, rewrites; iteration 2 must add 99: exit 104.
   A stale translation cache would add 5 twice and exit 10. *)
let smc_program =
  Demo_isa.
    [
      addi ~ra:31 ~imm:2 ~rc:5;
      ldq ~ra:31 ~imm:0x800 ~rc:7;
      addi ~ra:31 ~imm:5 ~rc:2;
      add ~ra:3 ~rb:2 ~rc:3;
      stq ~ra:31 ~imm:0x1008 ~rb:7;
      addi ~ra:5 ~imm:(-1) ~rc:5;
      beqz ~ra:5 ~off:1;
      br ~off:(-7);
      addi ~ra:31 ~imm:0 ~rc:0;
      add ~ra:3 ~rb:31 ~rc:1;
      sys;
    ]

let smc_patch (st : Machine.State.t) =
  let repl =
    Int64.logor
      (Demo_isa.addi ~ra:31 ~imm:99 ~rc:2)
      (Int64.shift_left (Demo_isa.add ~ra:3 ~rb:2 ~rc:3) 32)
  in
  Machine.Memory.write st.mem ~addr:0x800L ~width:8 repl

let test_smc_block_mode () =
  let iface, status, _ = run_demo ~patch:smc_patch "block_min" smc_program in
  Alcotest.(check (option int)) "rewritten instruction observed" (Some 104)
    status;
  Alcotest.(check bool) "code writes invalidated blocks" true
    (iface.stats.Specsim.Iface.block_invalidations > 0)

let test_smc_matches_one_mode () =
  let _, block_status, block_count =
    run_demo ~patch:smc_patch "block_min" smc_program
  in
  let _, one_status, one_count =
    run_demo ~patch:smc_patch "one_all" smc_program
  in
  Alcotest.(check (option int)) "modes agree on exit" one_status block_status;
  Alcotest.(check int64) "modes agree on count" one_count block_count

(* ----------------------------------------------------------------- *)
(* Stride regression: the tiny16 2-byte-instruction ISA                *)
(* ----------------------------------------------------------------- *)

(* Block construction used to advance the recorded per-site PCs by a
   hard-coded 4 bytes; any spec with a different [instrsize] then
   resumed at the wrong address after a block. The fuzzer's tiny16
   target (3-bit opcode in bits 13..15) exercises that path end to
   end — the same defect survives as the deliberate
   {!Specsim.Synth.Stride4} mutation. *)

(* Sum 5..1 with a backward branch: 15. R7 is the zero register. *)
let tiny_program =
  Fuzz.Tiny.
    [
      addi ~ra:7 ~imm:5 ~rc:1 (* r1 = 5 *);
      addi ~ra:7 ~imm:0 ~rc:2 (* r2 = 0 *);
      (* loop: *)
      add ~ra:2 ~rb:1 ~rc:2;
      addi ~ra:1 ~imm:(-1) ~rc:1;
      beqz ~ra:1 ~off:1 (* done when r1 == 0 *);
      beqz ~ra:7 ~off:(-4) (* always taken: back to loop *);
      addi ~ra:7 ~imm:0 ~rc:0 (* nr = sys_exit *);
      add ~ra:2 ~rb:7 ~rc:1 (* arg0 = sum *);
      sys;
    ]

let run_tiny bs =
  let spec = Lazy.force Fuzz.Tiny.spec in
  let iface = Specsim.Synth.make spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None -> Alcotest.fail "tiny16 has no abi");
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (2 * i)))
        ~width:2 w)
    tiny_program;
  Machine.State.reset st ~pc:0x1000L;
  let executed = Specsim.Iface.run_n iface 100_000 in
  if not st.halted then Alcotest.fail "tiny16 program did not terminate";
  (Machine.State.exit_status st, Int64.to_int st.instr_count, executed)

let test_tiny_stride () =
  let one_status, one_count, _ = run_tiny "one_all" in
  Alcotest.(check (option int)) "One-mode sum" (Some 15) one_status;
  let block_status, block_count, _ = run_tiny "block_min" in
  Alcotest.(check (option int)) "Block-mode sum" (Some 15) block_status;
  Alcotest.(check int) "modes agree on count" one_count block_count

(* ----------------------------------------------------------------- *)
(* Watchdog preemption of chained dispatch                             *)
(* ----------------------------------------------------------------- *)

(* Chained dispatch transfers block-to-block without returning to the
   driver, so a tight infinite loop is the worst case: the watchdog can
   only trip if run_n still honours its slice bound. *)
let test_watchdog_preempts_chained_loop () =
  let spin =
    List.find
      (fun (k : Vir.Kernels.sized) -> String.equal k.kname "spin")
      Vir.Kernels.pathological
  in
  let l = Workload.load Workload.alpha ~buildset:"block_min" spin.program in
  let config =
    {
      Inject.Watchdog.max_instructions = 50_000;
      max_seconds = Some 30.;
      deadline = None;
      check_interval = 4096;
    }
  in
  match Inject.Watchdog.run_guarded ~config l.iface with
  | () -> Alcotest.fail "spin loop terminated?!"
  | exception Machine.Sim_error.Error _ ->
    Alcotest.(check bool) "chained loop stayed preemptible" true true

(* ----------------------------------------------------------------- *)
(* Property: Block mode == One mode on random workloads, all ISAs      *)
(* ----------------------------------------------------------------- *)

let prop_block_equals_one =
  QCheck.Test.make ~count:20
    ~name:"Block mode matches One mode on random VIR loops (all ISAs)"
    QCheck.(pair (list_of_size (Gen.int_range 1 10) (int_bound (1 lsl 22)))
              (int_range 1 12))
    (fun (choices, iters) ->
      let program = Gen_common.vir_of_choices choices ~iters in
      List.for_all
        (fun t ->
          let block =
            Workload.run t ~buildset:"block_min" ~budget:1_000_000 program
          in
          let one =
            Workload.run t ~buildset:"one_all" ~budget:1_000_000 program
          in
          Gen_common.outcome_pair block = Gen_common.outcome_pair one)
        Workload.targets)

(* A store that targets the program's own code pages (rewriting an
   instruction word with its own value) forces invalidation and block
   rebuild on every iteration; Block and One mode must still agree. *)
let self_store_program : Vir.Lang.program =
  let open Vir.Lang in
  [
    Li (2, 0x1000l) (* code base *);
    Li (4, 0l);
    Li (5, 3l);
    Li (8, 0l);
    Label "loop";
    Ldw (3, 2, 0);
    Stw (3, 2, 0) (* rewrite first instruction with itself *);
    Addi (4, 4, 1);
    Bcond (Lt, 4, 5, "loop");
    Li (0, 0l);
    Li (1, 42l);
    Sys;
  ]

let test_self_store_equivalence () =
  List.iter
    (fun t ->
      let block =
        Workload.run t ~buildset:"block_min" ~budget:1_000_000
          self_store_program
      in
      let one =
        Workload.run t ~buildset:"one_all" ~budget:1_000_000 self_store_program
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: exit status" t.Workload.tname)
        one.Workload.exit_status block.Workload.exit_status;
      Alcotest.(check int)
        (Printf.sprintf "%s: exits 42" t.Workload.tname)
        42 block.Workload.exit_status)
    Workload.targets

let suite =
  [
    Alcotest.test_case "chain + site cache A/B" `Quick
      test_chain_and_site_cache;
    Alcotest.test_case "One mode keeps block counters at zero" `Quick
      test_one_mode_counters_stay_zero;
    Alcotest.test_case "SMC: rewritten instruction observed" `Quick
      test_smc_block_mode;
    Alcotest.test_case "SMC: Block matches One" `Quick test_smc_matches_one_mode;
    Alcotest.test_case "2-byte-instruction ISA stride" `Quick test_tiny_stride;
    Alcotest.test_case "watchdog preempts chained loop" `Quick
      test_watchdog_preempts_chained_loop;
    QCheck_alcotest.to_alcotest prop_block_equals_one;
    Alcotest.test_case "self-store equivalence (all ISAs)" `Quick
      test_self_store_equivalence;
  ]
