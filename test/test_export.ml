(** End-to-end checks of the structured export paths the CLI exposes:
    the `run --trace-out --format chrome` document must be valid JSON
    whose events are complete ("X" phase) and time-ordered, and the
    `check --json` lislint report must round-trip through the JSON
    parser with counts that match its diagnostics array. *)

open Obs.Export

(* ----------------------------------------------------------------- *)
(* Chrome trace from an instrumented run                               *)
(* ----------------------------------------------------------------- *)

let test_chrome_trace_valid_and_monotonic () =
  let o = Obs.create ~ring_capacity:256 () in
  let k = List.hd Vir.Kernels.pathological (* spin: never halts *) in
  let l = Workload.load ~obs:o Workload.alpha ~buildset:"one_all" k.program in
  ignore (Specsim.Iface.run_n l.iface 300);
  let events = Obs.events o in
  Alcotest.(check bool) "instrumented run recorded events" true (events <> []);
  let doc = to_string (chrome_of_events events) in
  let j =
    match parse_opt doc with
    | Some j -> j
    | None -> Alcotest.fail "chrome document is not valid JSON"
  in
  Alcotest.(check bool) "displayTimeUnit present" true
    (member "displayTimeUnit" j = Some (Str "ns"));
  match member "traceEvents" j with
  | Some (Arr evs) ->
    Alcotest.(check int) "every ring event exported" (List.length events)
      (List.length evs);
    let ts e =
      match member "ts" e with
      | Some (Float f) -> f
      | Some (Int i) -> Int64.to_float i
      | _ -> Alcotest.fail "event without a numeric ts"
    in
    List.iter
      (fun e ->
        Alcotest.(check bool) "complete event phase" true
          (member "ph" e = Some (Str "X"));
        Alcotest.(check bool) "non-negative duration" true
          (match member "dur" e with
          | Some (Float d) -> d >= 0.
          | Some (Int d) -> d >= 0L
          | _ -> false))
      evs;
    let rec monotone = function
      | a :: (b :: _ as rest) -> ts a <= ts b && monotone rest
      | _ -> true
    in
    Alcotest.(check bool) "timestamps oldest-first and monotone" true
      (monotone evs)
  | _ -> Alcotest.fail "traceEvents missing"

(* ----------------------------------------------------------------- *)
(* lislint --json round trip                                           *)
(* ----------------------------------------------------------------- *)

(* A spec seeded with one warning (rb fetched but unused: L031), linted
   the way `lisim check --json` does it. *)
let warned_spec_text =
  {|
isa "t" { endian little; wordsize 64; instrsize 4; decodekey 26 6; }

regclass GPR 32 width 64 zero 31;

instr A match 0x40000000 mask 0xFC0007FF {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(11,5)] write;
  action evaluate { rc = ra; }
}
|}

let lint_diags text =
  let spec =
    Lis.Sema.load
      [
        {
          Lis.Ast.src_role = Lis.Ast.Isa_description;
          src_name = "t.lis";
          src_text = text;
        };
      ]
  in
  match Analysis.Lint.run spec with
  | Ok ds -> ds
  | Error m -> Alcotest.fail m

let ints_of = function
  | Some (Int i) -> Int64.to_int i
  | _ -> Alcotest.fail "expected an integer field"

let test_lint_json_roundtrip () =
  let ds = lint_diags warned_spec_text in
  Alcotest.(check bool) "the seeded L031 fires" true
    (List.exists (fun d -> d.Analysis.Diag.code = "L031") ds);
  let report = Analysis.Diag.json_report ~unit_name:"t.lis" ds in
  let j =
    match parse_opt report with
    | Some j -> j
    | None -> Alcotest.fail "--json report is not valid JSON"
  in
  Alcotest.(check bool) "unit name round-trips" true
    (member "unit" j = Some (Str "t.lis"));
  let errors, warnings, notes = Analysis.Diag.counts ds in
  Alcotest.(check int) "errors count" errors (ints_of (member "errors" j));
  Alcotest.(check int) "warnings count" warnings (ints_of (member "warnings" j));
  Alcotest.(check int) "notes count" notes (ints_of (member "notes" j));
  match member "diagnostics" j with
  | Some (Arr djs) ->
    Alcotest.(check int) "one object per diagnostic" (List.length ds)
      (List.length djs);
    List.iter2
      (fun (d : Analysis.Diag.t) dj ->
        Alcotest.(check bool) (d.code ^ ": code round-trips") true
          (member "code" dj = Some (Str d.code));
        Alcotest.(check bool) (d.code ^ ": severity round-trips") true
          (member "severity" dj
          = Some (Str (Analysis.Diag.severity_name d.severity)));
        Alcotest.(check bool) (d.code ^ ": pass round-trips") true
          (member "pass" dj = Some (Str d.pass));
        Alcotest.(check bool) (d.code ^ ": message round-trips") true
          (member "message" dj = Some (Str d.message));
        Alcotest.(check bool) (d.code ^ ": line is positive") true
          (ints_of (member "line" dj) >= 1))
      ds djs
  | _ -> Alcotest.fail "diagnostics array missing"

(* A clean spec must render a report with empty diagnostics, still
   valid JSON — the shape tooling keys on. *)
let test_lint_json_clean () =
  let ds =
    match Analysis.Lint.run (Lazy.force Isa_alpha.Alpha.spec) with
    | Ok ds -> ds
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "alpha lints clean" 0 (List.length ds);
  let j =
    match parse_opt (Analysis.Diag.json_report ~unit_name:"alpha" ds) with
    | Some j -> j
    | None -> Alcotest.fail "--json report is not valid JSON"
  in
  Alcotest.(check bool) "zero errors" true (member "errors" j = Some (Int 0L));
  Alcotest.(check bool) "empty diagnostics array" true
    (member "diagnostics" j = Some (Arr []))

let suite =
  [
    Alcotest.test_case "chrome trace: valid JSON, monotone events" `Quick
      test_chrome_trace_valid_and_monotonic;
    Alcotest.test_case "lislint --json round trip" `Quick
      test_lint_json_roundtrip;
    Alcotest.test_case "lislint --json on a clean spec" `Quick
      test_lint_json_clean;
  ]
