(** Hostile-workload regression tests: the {!Workload.Hostile} kernels on
    every ISA, under both the cheapest block interface and the most
    detailed step interface.

    Reference-safe kernels are checked against the VIR reference executor
    like the benchmark kernels. The self-modifying trampoline cannot be
    reference-run (see the module doc in hostile.ml); it is pinned to its
    analytic exit status, all interfaces must agree on the full outcome,
    and the block engine must actually have invalidated translations —
    a trampoline that never tripped SMC detection would be a miscompile
    waiting to happen. *)

let budget = 20_000_000

let buildsets = [ "block_min"; "step_all" ]

let run_loaded (l : Workload.loaded) =
  (Workload.run_to_completion ~budget l, l.iface.stats)

let check_reference (t : Workload.target) bs (k : Workload.Hostile.kernel) () =
  let expected = Workload.reference k.program in
  let got, _ = run_loaded (Workload.load t ~buildset:bs k.program) in
  Alcotest.(check int) (k.hname ^ " exit") expected.exit_status got.exit_status;
  Alcotest.(check string) (k.hname ^ " output") expected.output got.output

let check_trampoline (t : Workload.target) bs (k : Workload.Hostile.kernel) ()
    =
  let expected_exit =
    match k.expected_exit with
    | Some e -> e
    | None -> Alcotest.fail "trampoline kernel carries no analytic exit"
  in
  let got, stats = run_loaded (Workload.load t ~buildset:bs k.program) in
  Alcotest.(check int) (k.hname ^ " analytic exit") expected_exit
    got.exit_status;
  (* cross-interface agreement stands in for the missing reference *)
  let other, _ = run_loaded (Workload.load t ~buildset:"one_all" k.program) in
  Alcotest.(check int) (k.hname ^ " exit agrees") other.exit_status
    got.exit_status;
  Alcotest.(check string) (k.hname ^ " output agrees") other.output got.output;
  (* the whole point of the kernel: copied-over code must kill blocks *)
  if String.length bs >= 5 && String.equal (String.sub bs 0 5) "block" then
    Alcotest.(check bool)
      (k.hname ^ " invalidated translations")
      true
      (stats.Specsim.Iface.block_invalidations > 0)

let check (t : Workload.target) bs (k : Workload.Hostile.kernel) =
  let f = if k.reference_safe then check_reference else check_trampoline in
  Alcotest.test_case
    (Printf.sprintf "%s %s %s" k.hname t.tname bs)
    `Quick (f t bs k)

(* The interpreter's one dispatch site rotates through four handlers —
   a megamorphic indirect jump. The bi-morphic successor cache cannot
   hold it, so the chain hit rate must visibly collapse. *)
let check_interp_chain_miss (t : Workload.target) () =
  let k =
    List.find
      (fun (k : Workload.Hostile.kernel) -> String.equal k.hname "interp")
      Workload.Hostile.test_suite
  in
  let _, stats = run_loaded (Workload.load t ~buildset:"block_min" k.program) in
  let taken = stats.Specsim.Iface.chain_taken
  and miss = stats.Specsim.Iface.chain_miss in
  Alcotest.(check bool) "dispatch misses the successor cache" true (miss > 50);
  let rate = float_of_int taken /. float_of_int (max 1 (taken + miss)) in
  if rate >= 0.9 then
    Alcotest.failf "chain hit rate %.1f%% — megamorphic dispatch was absorbed"
      (100. *. rate)

(* Cheap sanity pin: the analytic trampoline model matches a direct
   simulation of its own definition for several round counts. *)
let test_trampoline_exit_model () =
  List.iter
    (fun rounds ->
      let v4 = ref 0l in
      for r = 0 to rounds - 1 do
        if r land 1 = 0 then v4 := Int32.add !v4 7l
        else v4 := Int32.logxor (Int32.add !v4 11l) (Int32.of_int r)
      done;
      Alcotest.(check int)
        (Printf.sprintf "rounds=%d" rounds)
        (Int32.to_int !v4 land 0xff)
        (Workload.Hostile.trampoline_exit ~rounds))
    [ 1; 2; 7; 8; 400 ]

let suite =
  List.concat_map
    (fun (t : Workload.target) ->
      List.concat_map
        (fun bs -> List.map (check t bs) Workload.Hostile.test_suite)
        buildsets)
    Workload.targets
  @ List.map
      (fun (t : Workload.target) ->
        Alcotest.test_case ("interp defeats chaining " ^ t.tname) `Quick
          (check_interp_chain_miss t))
      Workload.targets
  @ [
      Alcotest.test_case "trampoline analytic model" `Quick
        test_trampoline_exit_model;
    ]
