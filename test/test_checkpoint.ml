(** Machine checkpointing: round trips, resume-equivalence (running from a
    checkpoint gives the same result as running straight through), and
    layout-mismatch rejection. *)

let run_kernel_with_checkpoint (t : Workload.target) split =
  (* run [split] instructions, checkpoint, keep going in a FRESH machine
     restored from the checkpoint; return the final outcome *)
  let k = List.nth Vir.Kernels.test_suite 3 in
  let l = Workload.load t ~buildset:"one_all" k.program in
  let _ = Specsim.Iface.run_n l.iface split in
  let data = Machine.Checkpoint.save l.iface.st in
  (* fresh machine + interface; OS emulator state (output so far) is
     carried over manually since the checkpoint does not capture it *)
  let output_so_far = Machine.Os_emu.output l.os in
  let spec = Lazy.force t.spec in
  let iface2 = Specsim.Synth.make spec "one_all" in
  let os2 = Machine.Os_emu.create () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os2 abi iface2.st
  | None -> ());
  Machine.Checkpoint.restore iface2.st data;
  let _ = Specsim.Iface.run_n iface2 50_000_000 in
  ( Machine.State.exit_status iface2.st,
    output_so_far ^ Machine.Os_emu.output os2,
    iface2.st.instr_count )

let test_resume_equivalence () =
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.test_suite 3 in
  let straight = Workload.run t ~buildset:"one_all" k.program in
  List.iter
    (fun split ->
      let status, output, count = run_kernel_with_checkpoint t split in
      Alcotest.(check (option int))
        (Printf.sprintf "exit after split at %d" split)
        (Some straight.exit_status)
        (Option.map (fun s -> s land 0xff) status);
      Alcotest.(check string) "output" straight.output output;
      Alcotest.(check int64) "instruction count preserved" straight.instructions
        count)
    [ 100; 5_000 ]

let test_roundtrip_exact () =
  let st =
    Machine.State.create ~endian:Machine.Memory.Big
      [
        { Machine.Regfile.cname = "G"; count = 8; width = 32; hardwired_zero = Some 0 };
        { Machine.Regfile.cname = "X"; count = 2; width = 64; hardwired_zero = None };
      ]
  in
  Machine.Regfile.write st.regs ~cls:0 ~idx:3 0xDEADL;
  Machine.Regfile.write st.regs ~cls:1 ~idx:1 0x123456789ABCDEFL;
  Machine.Memory.write st.mem ~addr:0x4242L ~width:8 77L;
  Machine.Memory.write st.mem ~addr:0x100000L ~width:4 88L;
  st.pc <- 0x8000L;
  st.instr_count <- 999L;
  Machine.State.raise_fault st (Machine.Fault.Arith "checkpointed mid-fault");
  let data = Machine.Checkpoint.save st in
  let st2 =
    Machine.State.create ~endian:Machine.Memory.Big
      [
        { Machine.Regfile.cname = "G"; count = 8; width = 32; hardwired_zero = Some 0 };
        { Machine.Regfile.cname = "X"; count = 2; width = 64; hardwired_zero = None };
      ]
  in
  Machine.Checkpoint.restore st2 data;
  Alcotest.(check bool) "registers equal" true (Machine.Regfile.equal st.regs st2.regs);
  Alcotest.(check int64) "pc" st.pc st2.pc;
  Alcotest.(check int64) "count" st.instr_count st2.instr_count;
  Alcotest.(check bool) "halted" st.halted st2.halted;
  Alcotest.(check bool) "fault" true
    (match (st.fault, st2.fault) with
    | Some a, Some b -> Machine.Fault.equal a b
    | None, None -> true
    | _ -> false);
  Alcotest.(check int64) "memory word" 77L
    (Machine.Memory.read st2.mem ~addr:0x4242L ~width:8);
  Alcotest.(check int64) "distant page" 88L
    (Machine.Memory.read st2.mem ~addr:0x100000L ~width:4)

let test_restore_after_corruption () =
  (* checkpoint a live machine mid-kernel, let an injector trash its
     registers, memory and PC, then restore: the machine must come back
     byte-exact and finish with the reference outcome *)
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.test_suite 3 in
  let expected = Workload.run t ~buildset:"one_all" k.program in
  let l = Workload.load t ~buildset:"one_all" k.program in
  let st = l.iface.st in
  let _ = Specsim.Iface.run_n l.iface 2_000 in
  let data = Machine.Checkpoint.save st in
  let regs0 = Machine.Regfile.copy st.regs in
  let pc0 = st.pc and count0 = st.instr_count in
  let mem0 = Machine.Memory.digest st.mem in
  (* corrupt everything an injector can reach, several times over *)
  let inj =
    Inject.Injector.create ~seed:123L ~rate:1.0
      ~sites:[ Inject.Injector.Reg_bitflip; Mem_byte; Pc_skew ] ()
  in
  let di = Specsim.Di.create ~info_slots:l.iface.slots.di_size in
  for i = 1 to 50 do
    st.instr_count <- Int64.add count0 (Int64.of_int i);
    Inject.Injector.bug inj st di
  done;
  Alcotest.(check bool) "corruption happened" true
    (Inject.Injector.n_injected inj > 0);
  Alcotest.(check bool) "state actually diverged" false
    (Machine.Regfile.equal st.regs regs0
    && Int64.equal (Machine.Memory.digest st.mem) mem0
    && Int64.equal st.pc pc0);
  Machine.Checkpoint.restore st data;
  l.iface.flush_code_cache ();
  Alcotest.(check bool) "registers byte-exact" true
    (Machine.Regfile.equal st.regs regs0);
  Alcotest.(check int64) "pc byte-exact" pc0 st.pc;
  Alcotest.(check int64) "instr count byte-exact" count0 st.instr_count;
  Alcotest.(check int64) "memory digest byte-exact" mem0
    (Machine.Memory.digest st.mem);
  (* and the restored machine still reaches the reference outcome *)
  let _ = Specsim.Iface.run_n l.iface 50_000_000 in
  Alcotest.(check (option int)) "exit status" (Some expected.exit_status)
    (Option.map (fun s -> s land 0xff) (Machine.State.exit_status st));
  Alcotest.(check string) "output" expected.output (Machine.Os_emu.output l.os)

let test_layout_mismatch_rejected () =
  let st =
    Machine.State.create ~endian:Machine.Memory.Little
      [ { Machine.Regfile.cname = "G"; count = 8; width = 64; hardwired_zero = None } ]
  in
  let data = Machine.Checkpoint.save st in
  let other =
    Machine.State.create ~endian:Machine.Memory.Little
      [ { Machine.Regfile.cname = "G"; count = 16; width = 64; hardwired_zero = None } ]
  in
  (match Machine.Checkpoint.restore other data with
  | exception Machine.Checkpoint.Corrupt _ -> ()
  | () -> Alcotest.fail "layout mismatch accepted");
  let wrong_endian =
    Machine.State.create ~endian:Machine.Memory.Big
      [ { Machine.Regfile.cname = "G"; count = 8; width = 64; hardwired_zero = None } ]
  in
  (match Machine.Checkpoint.restore wrong_endian data with
  | exception Machine.Checkpoint.Corrupt _ -> ()
  | () -> Alcotest.fail "endian mismatch accepted");
  match Machine.Checkpoint.restore st "garbage" with
  | exception Machine.Checkpoint.Corrupt _ -> ()
  | () -> Alcotest.fail "garbage accepted"

let suite =
  [
    Alcotest.test_case "resume equivalence" `Quick test_resume_equivalence;
    Alcotest.test_case "exact roundtrip" `Quick test_roundtrip_exact;
    Alcotest.test_case "restore after injected corruption" `Quick
      test_restore_after_corruption;
    Alcotest.test_case "mismatch rejected" `Quick test_layout_mismatch_rejected;
  ]
