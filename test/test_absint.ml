(** Abstract interpretation: value-domain unit tests, a qcheck soundness
    property per shipped ISA (everything the reference interpreter is
    observed to do must be inside the static effect summary), and the
    synthesizer's store-free gating. *)

module A = Semir.Absint
module Iset = A.Iset

(* ------------------------------------------------------------------ *)
(* Value domain                                                        *)
(* ------------------------------------------------------------------ *)

let test_aval_basics () =
  Alcotest.(check (option int64)) "const is const" (Some 5L)
    (A.is_const (A.const 5L));
  let j = A.join (A.const 4L) (A.const 6L) in
  (match j.A.itv with
  | Some (lo, hi) ->
    Alcotest.(check int64) "join lo" 4L lo;
    Alcotest.(check int64) "join hi" 6L hi
  | None -> Alcotest.fail "join of constants must keep an interval");
  Alcotest.(check int64) "join keeps evenness" 2L j.A.modulus;
  Alcotest.(check int64) "join rem" 0L j.A.rem;
  Alcotest.(check (option int64)) "top is not const" None (A.is_const A.top)

let test_interval_from_encoding () =
  (* a 6-bit unsigned field indexing a register class: the index
     interval is [0, 63] *)
  let p =
    [
      Semir.Ir.Reg_write
        {
          cls = 0;
          index = Semir.Ir.Enc { lo = 16; len = 6; signed = false };
          value = Semir.Ir.Const 0L;
        };
    ]
  in
  let r = A.analyze_program ~n_cells:1 p in
  match r.A.reg_acc with
  | [ ra ] -> (
    match ra.A.ra_index.A.itv with
    | Some (lo, hi) ->
      Alcotest.(check int64) "lo" 0L lo;
      Alcotest.(check int64) "hi" 63L hi
    | None -> Alcotest.fail "encoding field must have an interval")
  | _ -> Alcotest.fail "expected exactly one register access"

let test_congruence_misalignment () =
  let open Semir.Ir in
  let addr_off =
    Bin (Add, Bin (Shl, Cell 0, Const 3L), Const 4L)
  in
  let store addr = [ Store { width = W8; addr; value = Const 0L } ] in
  let r = A.analyze_program ~n_cells:1 (store addr_off) in
  Alcotest.(check bool) "store recorded" true r.A.effects.A.stores;
  (match r.A.mem_acc with
  | [ ma ] ->
    Alcotest.(check bool) "(x<<3)+4 misaligned for 8 bytes" true
      (A.misaligned ma)
  | _ -> Alcotest.fail "expected exactly one memory access");
  let r2 =
    A.analyze_program ~n_cells:1 (store (Bin (Shl, Cell 0, Const 3L)))
  in
  match r2.A.mem_acc with
  | [ ma ] ->
    Alcotest.(check bool) "x<<3 is 8-byte aligned" false (A.misaligned ma)
  | _ -> Alcotest.fail "expected exactly one memory access"

let test_may_vs_must_writes () =
  let open Semir.Ir in
  let p =
    [
      Set_cell (0, Const 1L);
      If
        ( Enc { lo = 0; len = 1; signed = false },
          [ Set_cell (1, Const 2L) ],
          [] );
    ]
  in
  let r = A.analyze_program ~n_cells:3 p in
  let e = r.A.effects in
  Alcotest.(check bool) "cell 0 must-written" true (Iset.mem 0 e.A.must_writes);
  Alcotest.(check bool) "cell 1 may-written" true (Iset.mem 1 e.A.writes);
  Alcotest.(check bool) "cell 1 not must-written" false
    (Iset.mem 1 e.A.must_writes)

let test_exposed_reads_killed_by_writes () =
  let open Semir.Ir in
  let p =
    [
      Set_cell (1, Const 0L);
      Set_cell (0, Cell 1);
      (* cell 1 read after its write: not exposed *)
      Set_cell (2, Cell 3);
      (* cell 3 read before any write: exposed *)
    ]
  in
  let reads = A.exposed_reads ~n_cells:4 p in
  Alcotest.(check bool) "killed read not exposed" false (Iset.mem 1 reads);
  Alcotest.(check bool) "unkilled read exposed" true (Iset.mem 3 reads)

(* ------------------------------------------------------------------ *)
(* Soundness: observed behaviour is inside the summary                 *)
(* ------------------------------------------------------------------ *)

(* Map a flat register index back to its class. *)
let class_of_flat (regs : Machine.Regfile.t) flat =
  let n = Machine.Regfile.class_count regs in
  let rec go i best =
    if i >= n then best
    else if Machine.Regfile.base regs i <= flat then go (i + 1) i
    else best
  in
  go 0 0

(** Execute every program of instruction [i]'s action sequence through
    the reference interpreter on a fresh machine, recording every store,
    register write, cell write and syscall; the recorded behaviour must
    be inside [i]'s static summary. *)
let check_instr_against_summary (spec : Lis.Spec.t)
    (s : Analysis.Absint.summary) (enc : int64) (seed : int) =
  let i = s.Analysis.Absint.s_instr in
  let n_cells = Lis.Spec.n_cells spec in
  let st = Lis.Spec.make_machine spec in
  (* seed registers with smallish values so addresses stay tame *)
  for cls = 0 to Machine.Regfile.class_count st.regs - 1 do
    let def = Machine.Regfile.class_def st.regs cls in
    for idx = 0 to def.Machine.Regfile.count - 1 do
      Machine.Regfile.write st.regs ~cls ~idx
        (Int64.of_int (((seed * 31) + (idx * 8189)) land 0xFFFF))
    done
  done;
  let stores = ref [] in
  let reg_writes = ref [] in
  let syscalls = ref 0 in
  st.syscall_handler <- (fun _ -> incr syscalls);
  let hooks =
    {
      Semir.Hooks.on_reg_write = (fun _ flat -> reg_writes := flat :: !reg_writes);
      on_store = (fun _ a w -> stores := (a, w) :: !stores);
    }
  in
  let loc = Array.init n_cells (fun c -> Semir.Frame.In_scratch c) in
  let fr = Semir.Frame.create ~di_slots:1 ~scratch_slots:n_cells in
  fr.pc <- 0x1000L;
  fr.next_pc <- 0x1004L;
  fr.enc <- enc;
  let sentinel c = Int64.of_int (0x5EED0000 + (c * 7919)) in
  for c = 0 to n_cells - 1 do
    fr.scratch.(c) <- sentinel c
  done;
  List.iter
    (fun (_, p) -> Semir.Eval.exec ~hooks ~loc st fr p)
    (Analysis.Absint.sequence_programs spec i);
  let e = s.Analysis.Absint.s_total.A.effects in
  let fail fmt =
    QCheck.Test.fail_reportf
      ("%s / 0x%Lx: " ^^ fmt)
      i.Lis.Spec.i_name enc
  in
  if !stores <> [] && not e.A.stores then
    fail "interpreter stored but the summary says store-free";
  if !syscalls > 0 && not e.A.syscall then
    fail "interpreter syscalled but the summary says no syscall";
  if Analysis.Absint.store_free s && (!stores <> [] || !syscalls > 0) then
    fail "store_free class produced a store or syscall";
  List.iter
    (fun flat ->
      let cls = class_of_flat st.regs flat in
      if not (Iset.mem cls e.A.reg_writes) then
        fail "register class %d written but absent from reg_writes" cls)
    !reg_writes;
  for c = 0 to n_cells - 1 do
    if fr.scratch.(c) <> sentinel c && not (Iset.mem c e.A.writes) then
      fail "cell '%s' written but absent from the static write set"
        (Lis.Spec.cell_name spec c)
  done;
  if st.fault <> None && not e.A.faults then
    fail "interpreter faulted but the summary says fault-free";
  if st.halted && not (e.A.halt || e.A.faults || e.A.syscall) then
    fail "machine halted but the summary has no halt/fault/syscall";
  true

let soundness_property name (sources : Lis.Ast.source list) =
  let spec = Lis.Sema.load sources in
  let sums = Analysis.Absint.summarize spec in
  let n = Array.length spec.instrs in
  let gen =
    (* a random instruction with random operand bits in its don't-care
       positions, plus a register/memory seed *)
    QCheck.Gen.(
      map3
        (fun idx noise seed ->
          let idx = abs idx mod n in
          let i = spec.instrs.(idx) in
          let enc =
            Int64.logor i.Lis.Spec.i_match
              (Int64.logand noise (Int64.lognot i.Lis.Spec.i_mask))
          in
          (idx, enc, seed))
        int int64 small_nat)
  in
  let arb =
    QCheck.make gen ~print:(fun (idx, enc, seed) ->
        Printf.sprintf "%s enc=0x%Lx seed=%d" spec.instrs.(idx).Lis.Spec.i_name
          enc seed)
  in
  QCheck.Test.make ~count:200
    ~name:(name ^ ": observed effects are inside the static summary")
    arb
    (fun (idx, enc, seed) ->
      check_instr_against_summary spec sums.(idx) enc seed)

(* ------------------------------------------------------------------ *)
(* Store classes are never store-free                                  *)
(* ------------------------------------------------------------------ *)

let test_alpha_stores_not_store_free () =
  let spec = Lazy.force Isa_alpha.Alpha.spec in
  let sums = Analysis.Absint.summarize spec in
  let verdict name =
    let rec go i =
      if i >= Array.length sums then
        Alcotest.failf "alpha has no instruction %s" name
      else if sums.(i).Analysis.Absint.s_instr.Lis.Spec.i_name = name then
        Analysis.Absint.store_free sums.(i)
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "STQ is not store-free" false (verdict "STQ");
  Alcotest.(check bool) "ADDQ is store-free" true (verdict "ADDQ")

(** Cross-validation with the conformance fuzzer's seeded defects: the
    tiny16 stride/invalidation bug classes are only observable through
    instructions that write memory or syscall (STW, SYS). Those classes
    must never be declared statically safe — otherwise the analysis
    could mask a seeded block-engine defect by eliding the very recheck
    that catches it. *)
let test_tiny16_defect_carriers_not_safe () =
  let spec = Lazy.force Fuzz.Tiny.spec in
  let sums = Analysis.Absint.summarize spec in
  let verdict name =
    let rec go i =
      if i >= Array.length sums then
        Alcotest.failf "tiny16 has no instruction %s" name
      else if sums.(i).Analysis.Absint.s_instr.Lis.Spec.i_name = name then
        Analysis.Absint.store_free sums.(i)
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "STW is not store-free" false (verdict "STW");
  Alcotest.(check bool) "SYS is not store-free" false (verdict "SYS");
  Alcotest.(check bool) "ADD is store-free" true (verdict "ADD");
  Alcotest.(check bool) "LDW is store-free (loads only)" true (verdict "LDW")

(* ------------------------------------------------------------------ *)
(* Synthesizer gating                                                  *)
(* ------------------------------------------------------------------ *)

let test_synth_fastpath_gating () =
  let spec = Lazy.force Isa_alpha.Alpha.spec in
  let on = Specsim.Synth.make spec "one_all" in
  let off = Specsim.Synth.make ~absint:false spec "one_all" in
  Alcotest.(check bool) "absint on: some classes fast-pathed" true
    (on.stats.Specsim.Iface.fastpath_classes > 0);
  Alcotest.(check int) "absint off: no fast path" 0
    off.stats.Specsim.Iface.fastpath_classes;
  Alcotest.(check int) "absint off: no analysis time" 0
    off.stats.Specsim.Iface.absint_ns

let find_kernel name =
  match
    List.find_opt
      (fun (k : Vir.Kernels.sized) -> k.kname = name)
      Vir.Kernels.test_suite
  with
  | Some k -> k
  | None -> Alcotest.failf "no test kernel named %s" name

(** The gated engine is observationally identical to the unanalyzed one,
    and block stability only ever fires with the analysis on. *)
let test_absint_on_off_equivalence () =
  let k = find_kernel "sort" in
  let run absint buildset =
    let l = Workload.load ~absint Workload.alpha ~buildset k.program in
    let out = Workload.run_to_completion l in
    (out, l.iface.stats)
  in
  List.iter
    (fun buildset ->
      let out_on, stats_on = run true buildset in
      let out_off, stats_off = run false buildset in
      Alcotest.(check bool)
        (buildset ^ ": outcomes agree")
        true
        (Workload.agrees out_on out_off);
      Alcotest.(check int)
        (buildset ^ ": absint off leaves no stable blocks")
        0 stats_off.Specsim.Iface.stable_blocks;
      ignore stats_on)
    [ "one_all"; "block_min" ];
  (* with the analysis on, the block engine marks store-free blocks
     stable on this kernel *)
  let _, stats = run true "block_min" in
  Alcotest.(check bool) "block_min: stable blocks found" true
    (stats.Specsim.Iface.stable_blocks > 0)

let suite =
  [
    Alcotest.test_case "aval basics" `Quick test_aval_basics;
    Alcotest.test_case "interval from encoding" `Quick
      test_interval_from_encoding;
    Alcotest.test_case "congruence misalignment" `Quick
      test_congruence_misalignment;
    Alcotest.test_case "may vs must writes" `Quick test_may_vs_must_writes;
    Alcotest.test_case "exposed reads killed" `Quick
      test_exposed_reads_killed_by_writes;
    QCheck_alcotest.to_alcotest
      (soundness_property "alpha" Isa_alpha.Alpha.sources);
    QCheck_alcotest.to_alcotest (soundness_property "arm" Isa_arm.Arm.sources);
    QCheck_alcotest.to_alcotest (soundness_property "ppc" Isa_ppc.Ppc.sources);
    QCheck_alcotest.to_alcotest
      (soundness_property "riscv" Isa_riscv.Riscv.sources);
    Alcotest.test_case "alpha store classes" `Quick
      test_alpha_stores_not_store_free;
    Alcotest.test_case "tiny16 defect carriers not safe" `Quick
      test_tiny16_defect_carriers_not_safe;
    Alcotest.test_case "synth fast-path gating" `Quick
      test_synth_fastpath_gating;
    Alcotest.test_case "absint on/off equivalence" `Quick
      test_absint_on_off_equivalence;
  ]
