(* Domain fleet: deque semantics, pool correctness, and the central
   contract — a parallel campaign is observably identical to the
   sequential one at the same seed. *)

let tmp_path name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lisim-test-fleet" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Filename.concat dir (Printf.sprintf "%s.%d" name (Unix.getpid ()))

let rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat path f))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* ----------------------------------------------------------------- *)
(* Deque: owner LIFO, thief FIFO, growth                               *)
(* ----------------------------------------------------------------- *)

let test_deque_lifo () =
  let d = Fleet.Deque.create () in
  for i = 1 to 5 do
    Fleet.Deque.push d i
  done;
  Alcotest.(check int) "size" 5 (Fleet.Deque.size d);
  let popped = List.init 5 (fun _ -> Fleet.Deque.pop d) in
  Alcotest.(check (list (option int)))
    "owner pops newest first"
    [ Some 5; Some 4; Some 3; Some 2; Some 1 ]
    popped;
  Alcotest.(check (option int)) "empty pops None" None (Fleet.Deque.pop d)

let test_deque_steal_fifo () =
  let d = Fleet.Deque.create () in
  for i = 1 to 5 do
    Fleet.Deque.push d i
  done;
  let stolen = List.init 5 (fun _ -> Fleet.Deque.steal d) in
  Alcotest.(check (list (option int)))
    "thief takes oldest first"
    [ Some 1; Some 2; Some 3; Some 4; Some 5 ]
    stolen;
  Alcotest.(check (option int)) "empty steals None" None (Fleet.Deque.steal d)

let test_deque_grow () =
  (* push well past the initial capacity; nothing may be lost *)
  let d = Fleet.Deque.create () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Fleet.Deque.push d i
  done;
  Alcotest.(check int) "size after growth" n (Fleet.Deque.size d);
  (* drain mixing both ends: pop and steal must together see every
     element exactly once *)
  let seen = Array.make n false in
  let dups = ref 0 in
  let record = function
    | None -> ()
    | Some v ->
      if seen.(v) then incr dups;
      seen.(v) <- true
  in
  for i = 0 to n - 1 do
    record (if i mod 2 = 0 then Fleet.Deque.pop d else Fleet.Deque.steal d)
  done;
  Alcotest.(check int) "no duplicates" 0 !dups;
  Alcotest.(check bool) "every element seen" true
    (Array.for_all Fun.id seen)

let test_deque_concurrent_steal () =
  (* owner pops while two thief domains steal: each element is claimed
     exactly once, none is lost *)
  let d = Fleet.Deque.create () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Fleet.Deque.push d i
  done;
  let claims = Array.init n (fun _ -> Atomic.make 0) in
  let claim = function
    | None -> false
    | Some v ->
      Atomic.incr claims.(v);
      true
  in
  let thief () =
    let continue = ref true in
    while !continue do
      if not (claim (Fleet.Deque.steal d)) then continue := false
    done
  in
  let t1 = Domain.spawn thief and t2 = Domain.spawn thief in
  let continue = ref true in
  while !continue do
    if not (claim (Fleet.Deque.pop d)) then continue := false
  done;
  Domain.join t1;
  Domain.join t2;
  (* stragglers: thieves may have bailed while the owner still held
     elements and vice versa — drain what is left *)
  let continue = ref true in
  while !continue do
    if not (claim (Fleet.Deque.pop d)) then continue := false
  done;
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "element %d claimed %d times" i (Atomic.get c))
    claims

(* ----------------------------------------------------------------- *)
(* Pool: map, worker state, exception propagation                      *)
(* ----------------------------------------------------------------- *)

let test_fleet_map () =
  Fleet.with_pool ~jobs:4 (fun fl ->
      Alcotest.(check int) "jobs" 4 (Fleet.jobs fl);
      let workers = Array.make (Fleet.jobs fl) () in
      let out =
        Fleet.map fl ~workers
          ~tasks:(Array.init 100 (fun k () -> k * k))
      in
      Alcotest.(check (array int))
        "results by task index"
        (Array.init 100 (fun k -> k * k))
        out;
      (* second batch on the same pool *)
      let out2 =
        Fleet.map fl ~workers ~tasks:(Array.init 7 (fun k () -> k + 1))
      in
      Alcotest.(check (array int)) "pool is reusable"
        (Array.init 7 (fun k -> k + 1))
        out2)

let test_fleet_worker_state () =
  (* every task sees exactly the state of the worker that ran it, and
     per-worker tallies sum to the batch size *)
  Fleet.with_pool ~jobs:3 (fun fl ->
      let workers = Array.init (Fleet.jobs fl) (fun i -> (i, ref 0)) in
      Fleet.run fl ~workers
        ~tasks:
          (Array.init 50 (fun _ (slot, tally) ->
               incr tally;
               slot))
        ~complete:(fun _ slot ->
          Alcotest.(check bool) "slot in range" true
            (slot >= 0 && slot < 3));
      let total =
        Array.fold_left (fun acc (_, t) -> acc + !t) 0 workers
      in
      Alcotest.(check int) "per-worker tallies sum to batch" 50 total)

let test_fleet_exception () =
  Fleet.with_pool ~jobs:2 (fun fl ->
      let workers = Array.make (Fleet.jobs fl) () in
      let raised =
        try
          Fleet.run fl ~workers
            ~tasks:
              (Array.init 10 (fun k () ->
                   if k = 3 || k = 7 then
                     Machine.Sim_error.raisef ~component:"vir" "task %d" k;
                   k))
            ~complete:(fun _ _ -> ());
          None
        with Machine.Sim_error.Error e -> Some e
      in
      (match raised with
      | Some e ->
        Alcotest.(check string) "taxonomy preserved" "vir"
          e.Machine.Sim_error.component;
        Alcotest.(check string) "lowest-index failure wins" "task 3"
          e.Machine.Sim_error.what
      | None -> Alcotest.fail "expected Sim_error to propagate");
      (* the pool survives a raising batch *)
      let out =
        Fleet.map fl ~workers ~tasks:(Array.init 4 (fun k () -> k))
      in
      Alcotest.(check (array int)) "pool usable after exception"
        [| 0; 1; 2; 3 |] out)

let test_fleet_bad_jobs () =
  match Fleet.create ~jobs:0 () with
  | (_ : Fleet.t) -> Alcotest.fail "jobs 0 must be rejected"
  | exception Machine.Sim_error.Error e ->
    Alcotest.(check string) "fleet component" "fleet"
      e.Machine.Sim_error.component

(* ----------------------------------------------------------------- *)
(* Per-case PRNG derivation: golden pins                               *)
(* ----------------------------------------------------------------- *)

let test_case_seed_golden () =
  (* pinned against splitmix64: derive ~seed ~salt:index. Changing the
     derivation silently re-seeds every campaign — these exact values
     are load-bearing for reproducer stability. *)
  List.iter
    (fun (seed, index, expect) ->
      Alcotest.(check int64)
        (Printf.sprintf "case_seed 0x%Lx %d" seed index)
        expect
        (Fuzz.Gen.case_seed ~seed ~index))
    [
      (0xBEEFL, 0, 0xC3FF1DE7F67D8680L);
      (0xBEEFL, 1, 0x4379E026D56A4E43L);
      (0xBEEFL, 7, 0x0616267B1C200478L);
      (0xDEADL, 0, 0x6D008D989A53CE5EL);
      (0xDEADL, 42, 0x571BF3C179B845B0L);
    ]

let test_case_gen_schedule_independent () =
  (* case k's program is identical whether generated alone or mid-way
     through a campaign sweep — generation is a pure function of
     (seed, index), never of visit order *)
  let spec = Fuzz.Driver.spec_of_isa "tiny" in
  let seed = 0xF00D5L in
  let alone =
    let cx = Fuzz.Gen.make_ctx ~isa:"tiny" spec in
    Fuzz.Gen.generate cx ~seed ~index:5
  in
  let swept =
    let cx = Fuzz.Gen.make_ctx ~isa:"tiny" spec in
    let last = ref None in
    for i = 0 to 5 do
      last := Some (Fuzz.Gen.generate cx ~seed ~index:i)
    done;
    Option.get !last
  in
  Alcotest.(check int64) "same per-case seed" alone.Fuzz.Gen.tc_seed
    swept.Fuzz.Gen.tc_seed;
  Alcotest.(check (array int64)) "same code" alone.Fuzz.Gen.tc_code
    swept.Fuzz.Gen.tc_code;
  Alcotest.(check bool) "same initial registers" true
    (alone.Fuzz.Gen.tc_regs = swept.Fuzz.Gen.tc_regs);
  Alcotest.(check bool) "same initial memory" true
    (alone.Fuzz.Gen.tc_mem = swept.Fuzz.Gen.tc_mem)

(* ----------------------------------------------------------------- *)
(* Campaign determinism: --jobs 4 == --jobs 1                          *)
(* ----------------------------------------------------------------- *)

type totals = {
  t_cases : int;
  t_retries : int;
  t_transient : int;
  t_gave_up : int;
  t_quarantined : int;
  t_demotions : int;
  t_replays : int;
  t_slices : int;
}

let run_campaign ~isa ~cfg ~seed ~budget ~tag ~fleet =
  let journal = tmp_path (tag ^ "-journal") in
  let quarantine = tmp_path (tag ^ "-quarantine") in
  rm_rf journal;
  rm_rf quarantine;
  let obs = Obs.create () in
  let stats = Super.Supervisor.of_registry obs.Obs.reg in
  let p =
    Fuzz.Campaign.run ~cfg ~obs ~stats ?fleet ~isa ~seed ~budget ~journal
      ~quarantine ()
  in
  let files =
    if Sys.file_exists quarantine then
      Array.to_list (Sys.readdir quarantine) |> List.sort String.compare
    else []
  in
  let contents =
    List.map
      (fun f ->
        let ic = open_in_bin (Filename.concat quarantine f) in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (f, s))
      files
  in
  let g c = Obs.Registry.get c in
  let totals =
    {
      t_cases = g stats.Super.Supervisor.s_cases;
      t_retries = g stats.Super.Supervisor.s_retries;
      t_transient = g stats.Super.Supervisor.s_transient;
      t_gave_up = g stats.Super.Supervisor.s_gave_up;
      t_quarantined = g stats.Super.Supervisor.s_quarantined;
      t_demotions = g stats.Super.Supervisor.s_demotions;
      t_replays = g stats.Super.Supervisor.s_replays;
      t_slices = g stats.Super.Supervisor.s_slices;
    }
  in
  rm_rf journal;
  rm_rf quarantine;
  (p, contents, totals)

let check_jobs_invariant ~isa ~cfg ~seed ~budget =
  let p1, q1, t1 =
    run_campaign ~isa ~cfg ~seed ~budget
      ~tag:(Printf.sprintf "%s-j1" isa)
      ~fleet:None
  in
  let p4, q4, t4 =
    Fleet.with_pool ~jobs:4 (fun fl ->
        run_campaign ~isa ~cfg ~seed ~budget
          ~tag:(Printf.sprintf "%s-j4" isa)
          ~fleet:(Some fl))
  in
  Alcotest.(check int)
    (isa ^ ": same clean count")
    p1.Fuzz.Campaign.p_clean p4.Fuzz.Campaign.p_clean;
  Alcotest.(check int)
    (isa ^ ": same quarantined count")
    p1.Fuzz.Campaign.p_quarantined p4.Fuzz.Campaign.p_quarantined;
  Alcotest.(check int)
    (isa ^ ": same gave-up count")
    p1.Fuzz.Campaign.p_gave_up p4.Fuzz.Campaign.p_gave_up;
  Alcotest.(check int)
    (isa ^ ": same cases executed")
    p1.Fuzz.Campaign.p_cases p4.Fuzz.Campaign.p_cases;
  Alcotest.(check (list string))
    (isa ^ ": same quarantined-reproducer set")
    (List.map fst q1) (List.map fst q4);
  List.iter2
    (fun (f, a) (_, b) ->
      Alcotest.(check string) (isa ^ ": reproducer bytes " ^ f) a b)
    q1 q4;
  Alcotest.(check bool)
    (isa ^ ": same merged counter totals")
    true (t1 = t4)

let test_campaign_jobs_deterministic_tiny () =
  (* a seeded defect: the parallel campaign must quarantine the exact
     same reproducers the sequential one does *)
  let cfg =
    {
      Fuzz.Oracle.default_config with
      mutate = Some Specsim.Synth.Stride4;
      buildsets = [ "block_min" ];
    }
  in
  check_jobs_invariant ~isa:"tiny" ~cfg ~seed:0xBEEFL ~budget:10

let test_campaign_jobs_deterministic_alpha () =
  let cfg =
    { Fuzz.Oracle.default_config with buildsets = [ "block_min" ] }
  in
  check_jobs_invariant ~isa:"alpha" ~cfg ~seed:11L ~budget:6

let test_campaign_jobs_deterministic_ppc () =
  let cfg =
    { Fuzz.Oracle.default_config with buildsets = [ "block_min" ] }
  in
  check_jobs_invariant ~isa:"ppc" ~cfg ~seed:12L ~budget:6

(* ----------------------------------------------------------------- *)
(* Kill-and-resume across a jobs boundary                              *)
(* ----------------------------------------------------------------- *)

let test_campaign_parallel_resume () =
  let journal = tmp_path "resume-journal" in
  let quarantine = tmp_path "resume-quarantine" in
  rm_rf journal;
  rm_rf quarantine;
  let cfg =
    { Fuzz.Oracle.default_config with buildsets = [ "block_min"; "one_min" ] }
  in
  (* a "killed" partial run: the first 6 of 12 budget slots *)
  let p1 =
    Fuzz.Campaign.run ~cfg ~isa:"tiny" ~seed:5L ~budget:6 ~journal ~quarantine
      ()
  in
  Alcotest.(check int) "partial run executed 6" 6 p1.Fuzz.Campaign.p_cases;
  (* resume the full budget in parallel: completed cases never re-run *)
  let p2 =
    Fleet.with_pool ~jobs:4 (fun fl ->
        Fuzz.Campaign.run ~cfg ~fleet:fl ~isa:"tiny" ~seed:5L ~budget:12
          ~journal ~quarantine ~resume:true ())
  in
  Alcotest.(check int) "resume skips the journaled 6" 6
    p2.Fuzz.Campaign.p_skipped;
  Alcotest.(check int) "resume executes the remaining 6" 6
    p2.Fuzz.Campaign.p_cases;
  let v = Super.Journal.load ~path:journal in
  let ids =
    List.map (fun e -> e.Super.Journal.e_case) v.Super.Journal.v_entries
  in
  let uniq = List.sort_uniq String.compare ids in
  Alcotest.(check int) "no case journaled twice" (List.length uniq)
    (List.length ids);
  Alcotest.(check int) "journal covers the full budget" 12 (List.length ids);
  rm_rf journal;
  rm_rf quarantine

let suite =
  [
    Alcotest.test_case "deque: owner pops LIFO" `Quick test_deque_lifo;
    Alcotest.test_case "deque: thief steals FIFO" `Quick test_deque_steal_fifo;
    Alcotest.test_case "deque: grows without loss" `Quick test_deque_grow;
    Alcotest.test_case "deque: concurrent steal claims exactly once" `Quick
      test_deque_concurrent_steal;
    Alcotest.test_case "fleet: map by task index, reusable" `Quick
      test_fleet_map;
    Alcotest.test_case "fleet: worker-local state" `Quick
      test_fleet_worker_state;
    Alcotest.test_case "fleet: lowest-index exception propagates" `Quick
      test_fleet_exception;
    Alcotest.test_case "fleet: non-positive jobs rejected" `Quick
      test_fleet_bad_jobs;
    Alcotest.test_case "gen: case_seed golden values" `Quick
      test_case_seed_golden;
    Alcotest.test_case "gen: case generation is schedule-independent" `Quick
      test_case_gen_schedule_independent;
    Alcotest.test_case "campaign: jobs 4 == jobs 1 (tiny, seeded defect)"
      `Quick test_campaign_jobs_deterministic_tiny;
    Alcotest.test_case "campaign: jobs 4 == jobs 1 (alpha)" `Quick
      test_campaign_jobs_deterministic_alpha;
    Alcotest.test_case "campaign: jobs 4 == jobs 1 (ppc)" `Quick
      test_campaign_jobs_deterministic_ppc;
    Alcotest.test_case "campaign: parallel resume runs no case twice" `Quick
      test_campaign_parallel_resume;
  ]
