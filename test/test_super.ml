(** Tests for the supervised execution runtime (lib/super): failure
    taxonomy, durable journal round trips and torn-tail tolerance,
    deterministic supervisor retry/backoff, quarantine persistence, the
    graceful-degradation ladder (healthy, forced-demotion conformance
    property across the real ISAs, seeded-defect demotion to the
    reference level), and campaign resume semantics. *)

let sim_error ~component ?(context = []) what =
  try
    Machine.Sim_error.raisef ~component
      ~context "%s" what
  with Machine.Sim_error.Error _ as e -> e

(* ----------------------------------------------------------------- *)
(* Taxonomy                                                            *)
(* ----------------------------------------------------------------- *)

let sev = function
  | Super.Taxonomy.Transient -> "transient"
  | Super.Taxonomy.Deterministic -> "deterministic"
  | Super.Taxonomy.Fatal -> "fatal"

let check_classify name exn want_sev want_kind =
  let f = Super.Taxonomy.classify exn in
  Alcotest.(check string) (name ^ ": severity") want_sev (sev f.Super.Taxonomy.f_severity);
  Alcotest.(check string) (name ^ ": kind") want_kind f.Super.Taxonomy.f_kind

let test_taxonomy () =
  check_classify "wall-clock deadline"
    (sim_error ~component:"watchdog"
       ~context:[ ("reason", "wall-clock deadline exceeded") ]
       "simulation halted by watchdog")
    "transient" "watchdog.wall_clock";
  check_classify "wall-clock limit"
    (sim_error ~component:"watchdog"
       ~context:[ ("reason", "wall-clock limit exceeded") ]
       "simulation halted by watchdog")
    "transient" "watchdog.wall_clock";
  check_classify "instruction budget"
    (sim_error ~component:"watchdog"
       ~context:[ ("reason", "instruction budget exceeded") ]
       "simulation halted by watchdog")
    "deterministic" "watchdog.budget";
  check_classify "spin loop"
    (sim_error ~component:"watchdog"
       ~context:
         [ ("reason", "no forward progress (architectural state is a fixed point)") ]
       "simulation halted by watchdog")
    "deterministic" "watchdog.no_progress";
  check_classify "engine invariant"
    (sim_error ~component:"engine" "block dispatch invariant violated")
    "deterministic" "engine.invariant";
  check_classify "other sim error"
    (sim_error ~component:"workload" "no abi")
    "deterministic" "sim.workload";
  check_classify "host io" (Sys_error "disk on fire") "transient" "host.io";
  check_classify "unknown is fatal" (Failure "?") "fatal" "exn"

(* ----------------------------------------------------------------- *)
(* Journal                                                             *)
(* ----------------------------------------------------------------- *)

let tmp_path name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lisim-test-super" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Filename.concat dir (Printf.sprintf "%s.%d" name (Unix.getpid ()))

let test_journal_roundtrip () =
  let path = tmp_path "journal" in
  if Sys.file_exists path then Sys.remove path;
  let w = Super.Journal.open_ ~path ~meta:[ ("campaign", Obs.Export.Str "t") ] in
  Super.Journal.record w
    (Super.Journal.entry ~attempts:1 ~outcome:Super.Journal.Pass "case/a");
  Super.Journal.record w
    (Super.Journal.entry ~attempts:2 ~digest:0xdeadL ~level:"step_all"
       ~detail:"mem: boom" ~outcome:Super.Journal.Quarantined "case/b");
  Super.Journal.close w;
  (* a second open appends; history survives *)
  let w = Super.Journal.open_ ~path ~meta:[] in
  Super.Journal.record w
    (Super.Journal.entry ~attempts:3 ~outcome:Super.Journal.Gave_up "case/c");
  Super.Journal.close w;
  let v = Super.Journal.load ~path in
  Alcotest.(check int) "entries" 3 (List.length v.Super.Journal.v_entries);
  Alcotest.(check int) "torn" 0 v.Super.Journal.v_torn;
  Alcotest.(check bool) "a complete" true (Super.Journal.is_complete v "case/a");
  Alcotest.(check bool) "b complete" true (Super.Journal.is_complete v "case/b");
  Alcotest.(check bool) "c complete" true (Super.Journal.is_complete v "case/c");
  Alcotest.(check bool) "d not complete" false (Super.Journal.is_complete v "case/d");
  let b = List.nth v.Super.Journal.v_entries 1 in
  Alcotest.(check int) "attempts round-trip" 2 b.Super.Journal.e_attempts;
  Alcotest.(check (option string)) "level round-trip" (Some "step_all")
    b.Super.Journal.e_level;
  Alcotest.(check bool) "digest round-trip" true
    (b.Super.Journal.e_digest = Some 0xdeadL);
  Sys.remove path

let test_journal_torn_tail () =
  let path = tmp_path "journal-torn" in
  if Sys.file_exists path then Sys.remove path;
  let w = Super.Journal.open_ ~path ~meta:[] in
  Super.Journal.record w
    (Super.Journal.entry ~attempts:1 ~outcome:Super.Journal.Pass "case/a");
  Super.Journal.close w;
  (* simulate a SIGKILL mid-write: a torn half line at the tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"v\":1,\"kind\":\"case\",\"case\":\"case/tor";
  close_out oc;
  let v = Super.Journal.load ~path in
  Alcotest.(check int) "surviving entries" 1 (List.length v.Super.Journal.v_entries);
  Alcotest.(check int) "torn counted" 1 v.Super.Journal.v_torn;
  Alcotest.(check bool) "complete prefix usable" true
    (Super.Journal.is_complete v "case/a");
  Alcotest.(check bool) "missing file is empty" true
    ((Super.Journal.load ~path:(path ^ ".absent")).Super.Journal.v_torn = 0
    && not (Super.Journal.is_complete (Super.Journal.load ~path:(path ^ ".absent")) "x"));
  Sys.remove path

(* ----------------------------------------------------------------- *)
(* Supervisor                                                          *)
(* ----------------------------------------------------------------- *)

let transient_exn =
  sim_error ~component:"watchdog"
    ~context:[ ("reason", "wall-clock deadline exceeded") ]
    "simulation halted by watchdog"

let test_supervisor_retry_deterministic () =
  let cfg = { Super.Supervisor.default with seed = 7L; max_attempts = 3 } in
  let run () =
    let sleeps = ref [] in
    let calls = ref 0 in
    let out =
      Super.Supervisor.run_case cfg ~index:5L
        ~sleep:(fun d -> sleeps := d :: !sleeps)
        (fun ~deadline:_ ->
          incr calls;
          if !calls < 3 then raise transient_exn else "ok")
    in
    (out, List.rev !sleeps)
  in
  let out1, sleeps1 = run () in
  let out2, sleeps2 = run () in
  (match out1 with
  | Super.Supervisor.Done ("ok", 3) -> ()
  | Super.Supervisor.Done (_, n) -> Alcotest.failf "wrong attempts: %d" n
  | Super.Supervisor.Gave_up _ -> Alcotest.fail "gave up unexpectedly");
  Alcotest.(check int) "two backoffs" 2 (List.length sleeps1);
  Alcotest.(check (list (float 1e-9))) "backoff schedule is deterministic"
    sleeps1 sleeps2;
  Alcotest.(check bool) "outcomes equal" true (out1 = out2);
  List.iter
    (fun d -> Alcotest.(check bool) "backoff positive and capped" true
        (d > 0. && d <= 2. *. 1.5))
    sleeps1

let test_supervisor_deterministic_failure_no_retry () =
  let calls = ref 0 in
  match
    Super.Supervisor.run_case Super.Supervisor.default ~index:0L
      ~sleep:(fun _ -> Alcotest.fail "must not sleep")
      (fun ~deadline:_ ->
        incr calls;
        Machine.Sim_error.raisef ~component:"engine" "invariant violated")
  with
  | Super.Supervisor.Gave_up (f, 1) ->
    Alcotest.(check string) "kind" "engine.invariant" f.Super.Taxonomy.f_kind;
    Alcotest.(check int) "exactly one attempt" 1 !calls
  | _ -> Alcotest.fail "expected immediate give-up"

let test_supervisor_fatal_reraises () =
  Alcotest.check_raises "fatal re-raised" (Failure "boom") (fun () ->
      ignore
        (Super.Supervisor.run_case Super.Supervisor.default ~index:0L
           (fun ~deadline:_ -> failwith "boom")))

let test_watchdog_deadline () =
  let spec = Fuzz.Driver.spec_of_isa "tiny" in
  let st = Lis.Spec.make_machine spec in
  (* no deadline, or a future one: no trip *)
  Inject.Watchdog.check_deadline st;
  Inject.Watchdog.check_deadline ~deadline:(Unix.gettimeofday () +. 3600.) st;
  match Inject.Watchdog.check_deadline ~deadline:(Unix.gettimeofday () -. 1.) st with
  | () -> Alcotest.fail "expired deadline did not trip"
  | exception Machine.Sim_error.Error e ->
    let f = Super.Taxonomy.classify (Machine.Sim_error.Error e) in
    Alcotest.(check string) "classified transient" "transient"
      (sev f.Super.Taxonomy.f_severity);
    Alcotest.(check string) "kind" "watchdog.wall_clock" f.Super.Taxonomy.f_kind

(* ----------------------------------------------------------------- *)
(* Quarantine                                                          *)
(* ----------------------------------------------------------------- *)

let test_quarantine () =
  let dir = tmp_path "quarantine" in
  let q = Super.Quarantine.create ~dir in
  let p1 = Super.Quarantine.put q ~name:"fuzz/tiny/0x1/0/block_min.repro" ~contents:"one" in
  let p2 = Super.Quarantine.put q ~name:"fuzz/tiny/0x1/0/block_min.repro" ~contents:"two" in
  Alcotest.(check bool) "no clobber" true (p1 <> p2);
  Alcotest.(check int) "both artifacts" 2 (Super.Quarantine.count q);
  let read p = In_channel.with_open_text p In_channel.input_all in
  Alcotest.(check string) "first intact" "one" (read p1);
  Alcotest.(check string) "second intact" "two" (read p2);
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) (Super.Quarantine.list q);
  Unix.rmdir dir

(* ----------------------------------------------------------------- *)
(* Degradation ladder                                                  *)
(* ----------------------------------------------------------------- *)

let degrade_session ?mutate ~isa ~tc_seed ~tc_index ~buildset () =
  let spec = Fuzz.Driver.spec_of_isa isa in
  let cx = Fuzz.Gen.make_ctx ~isa spec in
  let tc = Fuzz.Gen.generate cx ~seed:tc_seed ~index:tc_index in
  ( spec,
    tc,
    Super.Degrade.create ?mutate ~spec ~buildset
      ~load:(Fuzz.Oracle.load_image spec tc)
      () )

(* Uninterrupted reference: a plain step_all machine advanced exactly as
   many instructions as the session's trusted shadow retired. When the
   session ended halted, the reference owes one more execution — the
   halting instruction retires nothing. *)
let reference_digest spec tc ~halted n =
  let iface = Specsim.Synth.make spec "step_all" in
  Fuzz.Oracle.load_image spec tc iface.Specsim.Iface.st;
  let st = iface.Specsim.Iface.st in
  let remaining = ref n in
  while !remaining > 0 && not st.Machine.State.halted do
    let got = iface.Specsim.Iface.run_fast !remaining in
    if got = 0 then remaining := 0 else remaining := !remaining - got
  done;
  if halted && not st.Machine.State.halted then
    ignore (iface.Specsim.Iface.run_fast 1);
  Machine.Checkpoint.digest st

let test_degrade_healthy () =
  let spec, tc, session =
    degrade_session ~isa:"tiny" ~tc_seed:3L ~tc_index:0 ~buildset:"block_min" ()
  in
  let r = Super.Degrade.run ~slice:32 ~budget:400 session in
  Alcotest.(check string) "stays at full detail" "full"
    r.Super.Degrade.r_final_level;
  Alcotest.(check int) "no demotions" 0 r.Super.Degrade.r_demotions;
  Alcotest.(check bool) "made progress" true
    (Int64.compare r.Super.Degrade.r_instructions 0L > 0);
  Alcotest.(check bool) "digest matches uninterrupted step_all" true
    (Int64.equal r.Super.Degrade.r_digest
       (reference_digest spec tc ~halted:r.Super.Degrade.r_halted
          (Int64.to_int r.Super.Degrade.r_instructions)))

(* The tentpole conformance property: forcing a demotion at an arbitrary
   slice boundary must not change the final architectural digest. *)
let prop_forced_demotion_preserves_digest =
  QCheck.Test.make ~count:24
    ~name:"forced demotion at a random boundary preserves the digest"
    QCheck.(
      triple
        (oneofl ~print:Fun.id [ "alpha"; "arm"; "ppc"; "riscv" ])
        small_nat (1 -- 300))
    (fun (isa, tc_index, cut) ->
      let spec, tc, session =
        degrade_session ~isa ~tc_seed:13L ~tc_index ~buildset:"block_min" ()
      in
      let r =
        Super.Degrade.run ~slice:32 ~force_demote_at:cut ~budget:400 session
      in
      Int64.equal r.Super.Degrade.r_digest
        (reference_digest spec tc ~halted:r.Super.Degrade.r_halted
          (Int64.to_int r.Super.Degrade.r_instructions)))

let test_degrade_seeded_defect () =
  (* find a testcase the stride4 defect actually diverges on (tiny is
     the only ISA with a non-4-byte stride, hence the only observable
     target), then prove the session survives by demoting to the
     reference level with a correct final state. *)
  let cfg =
    {
      Fuzz.Oracle.default_config with
      mutate = Some Specsim.Synth.Stride4;
      buildsets = [ "block_min" ];
    }
  in
  let o = Fuzz.Driver.hunt ~cfg ~isa:"tiny" ~seed:42L ~budget:60 () in
  match o.Fuzz.Driver.o_found with
  | None -> Alcotest.fail "stride4 defect not found by the oracle"
  | Some (tc, _) ->
    let spec = Fuzz.Driver.spec_of_isa "tiny" in
    let session =
      Super.Degrade.create ~mutate:Specsim.Synth.Stride4 ~spec
        ~buildset:"block_min"
        ~load:(Fuzz.Oracle.load_image spec tc)
        ()
    in
    let r = Super.Degrade.run ~slice:32 ~budget:400 session in
    Alcotest.(check string) "degrades to the reference level" "step_all"
      r.Super.Degrade.r_final_level;
    Alcotest.(check bool) "at least one demotion" true
      (r.Super.Degrade.r_demotions >= 1);
    Alcotest.(check bool) "digest matches uninterrupted step_all" true
      (Int64.equal r.Super.Degrade.r_digest
         (reference_digest spec tc ~halted:r.Super.Degrade.r_halted
          (Int64.to_int r.Super.Degrade.r_instructions)))

(* ----------------------------------------------------------------- *)
(* Supervised campaign: journal + resume                               *)
(* ----------------------------------------------------------------- *)

let test_campaign_resume_no_case_twice () =
  let journal = tmp_path "campaign-journal" in
  let quarantine = tmp_path "campaign-quarantine" in
  if Sys.file_exists journal then Sys.remove journal;
  let cfg =
    { Fuzz.Oracle.default_config with buildsets = [ "block_min"; "one_min" ] }
  in
  let p1 =
    Fuzz.Campaign.run ~cfg ~isa:"tiny" ~seed:5L ~budget:12 ~journal ~quarantine ()
  in
  Alcotest.(check int) "all cases executed" 12 p1.Fuzz.Campaign.p_cases;
  Alcotest.(check int) "none skipped" 0 p1.Fuzz.Campaign.p_skipped;
  (* simulate a kill after the first run wrote some lines, then resume:
     completed cases must not run again *)
  let p2 =
    Fuzz.Campaign.run ~cfg ~isa:"tiny" ~seed:5L ~budget:12 ~journal ~quarantine
      ~resume:true ()
  in
  Alcotest.(check int) "resume executes nothing" 0 p2.Fuzz.Campaign.p_cases;
  Alcotest.(check int) "resume skips every case" 12 p2.Fuzz.Campaign.p_skipped;
  (* the journal holds each case id at most once per run pair *)
  let v = Super.Journal.load ~path:journal in
  let ids =
    List.map (fun e -> e.Super.Journal.e_case) v.Super.Journal.v_entries
  in
  let uniq = List.sort_uniq String.compare ids in
  Alcotest.(check int) "no case journaled twice" (List.length uniq)
    (List.length ids);
  (* a torn tail does not confuse resume *)
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"half";
  close_out oc;
  let p3 =
    Fuzz.Campaign.run ~cfg ~isa:"tiny" ~seed:5L ~budget:12 ~journal ~quarantine
      ~resume:true ()
  in
  Alcotest.(check int) "torn tail tolerated" 0 p3.Fuzz.Campaign.p_cases;
  Alcotest.(check bool) "torn line counted" true (p3.Fuzz.Campaign.p_torn >= 1);
  Sys.remove journal

let test_campaign_quarantines_defect () =
  let journal = tmp_path "defect-journal" in
  let quarantine = tmp_path "defect-quarantine" in
  if Sys.file_exists journal then Sys.remove journal;
  let cfg =
    {
      Fuzz.Oracle.default_config with
      mutate = Some Specsim.Synth.Stride4;
      buildsets = [ "block_min" ];
    }
  in
  let p =
    Fuzz.Campaign.run ~cfg ~isa:"tiny" ~seed:42L ~budget:30 ~journal ~quarantine ()
  in
  Alcotest.(check bool) "campaign completes with quarantines" true
    (p.Fuzz.Campaign.p_quarantined >= 1);
  Alcotest.(check bool) "sessions demoted" true (p.Fuzz.Campaign.p_demotions >= 1);
  let q = Super.Quarantine.create ~dir:quarantine in
  Alcotest.(check bool) "reproducers persisted" true
    (Super.Quarantine.count q >= 1);
  (* every quarantined artifact is a replayable reproducer that still
     shows the divergence *)
  List.iter
    (fun f ->
      let r = Fuzz.Repro.load ~path:(Filename.concat quarantine f) in
      let verdicts = Fuzz.Driver.replay r in
      Alcotest.(check bool) (f ^ " still diverges") true
        (List.exists (fun (_, d) -> d <> None) verdicts))
    (Super.Quarantine.list q);
  (* journal records the quarantine with its final degradation level *)
  let v = Super.Journal.load ~path:journal in
  Alcotest.(check bool) "journal has a quarantined step_all entry" true
    (List.exists
       (fun e ->
         e.Super.Journal.e_outcome = Super.Journal.Quarantined
         && e.Super.Journal.e_level = Some "step_all")
       v.Super.Journal.v_entries);
  List.iter (fun f -> Sys.remove (Filename.concat quarantine f))
    (Super.Quarantine.list q);
  Unix.rmdir quarantine;
  Sys.remove journal

let suite =
  [
    Alcotest.test_case "failure taxonomy" `Quick test_taxonomy;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "supervisor deterministic retry" `Quick
      test_supervisor_retry_deterministic;
    Alcotest.test_case "deterministic failure: no retry" `Quick
      test_supervisor_deterministic_failure_no_retry;
    Alcotest.test_case "fatal failures re-raise" `Quick
      test_supervisor_fatal_reraises;
    Alcotest.test_case "watchdog deadline" `Quick test_watchdog_deadline;
    Alcotest.test_case "quarantine persistence" `Quick test_quarantine;
    Alcotest.test_case "degrade: healthy session" `Quick test_degrade_healthy;
    QCheck_alcotest.to_alcotest prop_forced_demotion_preserves_digest;
    Alcotest.test_case "degrade: seeded defect reaches step_all" `Quick
      test_degrade_seeded_defect;
    Alcotest.test_case "campaign resume runs no case twice" `Quick
      test_campaign_resume_no_case_twice;
    Alcotest.test_case "campaign quarantines a seeded defect" `Quick
      test_campaign_quarantines_defect;
  ]
