(** Fault injection & recovery: PRNG stability, campaign determinism,
    detection coverage, memory repair, watchdog trips, and a qcheck
    property that speculative rollback undoes journaled corruption
    byte-exactly. *)

(* ---------------- PRNG ------------------------------------------- *)

let test_prng_deterministic () =
  for i = 0 to 99 do
    let a = Inject.Prng.draw ~seed:7L ~index:(Int64.of_int i) ~salt:3 in
    let b = Inject.Prng.draw ~seed:7L ~index:(Int64.of_int i) ~salt:3 in
    Alcotest.(check int64) "same key, same draw" a b
  done;
  let a = Inject.Prng.draw ~seed:7L ~index:1L ~salt:0 in
  let b = Inject.Prng.draw ~seed:8L ~index:1L ~salt:0 in
  let c = Inject.Prng.draw ~seed:7L ~index:2L ~salt:0 in
  let d = Inject.Prng.draw ~seed:7L ~index:1L ~salt:1 in
  Alcotest.(check bool) "seed matters" false (Int64.equal a b);
  Alcotest.(check bool) "index matters" false (Int64.equal a c);
  Alcotest.(check bool) "salt matters" false (Int64.equal a d)

let test_prng_ranges () =
  for i = 0 to 999 do
    let index = Int64.of_int i in
    let u = Inject.Prng.uniform ~seed:99L ~index ~salt:0 in
    Alcotest.(check bool) "uniform in [0,1)" true (u >= 0.0 && u < 1.0);
    let n = Inject.Prng.below ~seed:99L ~index ~salt:1 17 in
    Alcotest.(check bool) "below in range" true (n >= 0 && n < 17)
  done

(* ---------------- campaigns -------------------------------------- *)

let small_cfg =
  {
    Inject.Campaign.default_config with
    rate = 1e-3;
    budget = 150_000;
    spec_trials = 4;
  }

let report_fingerprint (r : Inject.Campaign.report) =
  Format.asprintf "%a" Inject.Campaign.pp_report r

let test_campaign_deterministic () =
  let a = Inject.Campaign.run ~isas:[ "alpha" ] small_cfg in
  let b = Inject.Campaign.run ~isas:[ "alpha" ] small_cfg in
  Alcotest.(check (list string))
    "same seed, same campaign"
    (List.map report_fingerprint a)
    (List.map report_fingerprint b);
  let c =
    Inject.Campaign.run ~isas:[ "alpha" ]
      { small_cfg with seed = 43L }
  in
  Alcotest.(check bool)
    "different seed, different campaign" false
    (List.map report_fingerprint a = List.map report_fingerprint c)

let test_campaign_coverage () =
  (* acceptance bar: >= 95% detection for register / PC / memory sites *)
  let cfg =
    {
      small_cfg with
      sites = [ Inject.Injector.Reg_bitflip; Mem_byte; Pc_skew ];
      rate = 2e-3;
    }
  in
  List.iter
    (fun isa ->
      let r =
        match Inject.Campaign.run ~isas:[ isa ] cfg with
        | [ r ] -> r
        | _ -> Alcotest.fail "one report expected"
      in
      Alcotest.(check bool)
        (isa ^ ": campaign injected something")
        true (r.r_architectural > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: coverage %.1f%% >= 95%%" isa
           (100. *. Inject.Campaign.coverage r))
        true
        (Inject.Campaign.coverage r >= 0.95);
      Alcotest.(check bool)
        (isa ^ ": recovered run matches reference")
        true r.r_outcome_ok)
    [ "alpha"; "arm"; "ppc"; "riscv" ]

let test_memory_corruption_repaired () =
  (* regression: memory-only corruption must be detected AND repaired —
     the recovered run still produces the reference output *)
  let cfg =
    { small_cfg with sites = [ Inject.Injector.Mem_byte ]; rate = 5e-3 }
  in
  let r =
    match Inject.Campaign.run ~isas:[ "alpha" ] cfg with
    | [ r ] -> r
    | _ -> Alcotest.fail "one report expected"
  in
  Alcotest.(check bool) "memory was corrupted" true (r.r_architectural > 0);
  Alcotest.(check int) "all corruption detected" r.r_architectural r.r_detected;
  Alcotest.(check bool)
    "divergences recovered" true
    (r.r_repairs + r.r_restores > 0);
  Alcotest.(check int) "no failed restores" 0 r.r_restore_failures;
  Alcotest.(check bool) "outcome still correct" true r.r_outcome_ok

let test_rollback_under_injection () =
  List.iter
    (fun isa ->
      let r =
        match Inject.Campaign.run ~isas:[ isa ] small_cfg with
        | [ r ] -> r
        | _ -> Alcotest.fail "one report expected"
      in
      Alcotest.(check bool)
        (isa ^ ": rollback trials ran")
        true (r.r_rollback_trials > 0);
      Alcotest.(check int)
        (isa ^ ": every rollback byte-exact")
        r.r_rollback_trials r.r_rollback_exact)
    [ "alpha"; "arm"; "ppc"; "riscv" ]

(* ---------------- injector validation ---------------------------- *)

let test_injector_rejects_bad_config () =
  let expect_error f =
    match f () with
    | exception Machine.Sim_error.Error e ->
      Alcotest.(check string) "component" "inject" e.component
    | _ -> Alcotest.fail "bad config accepted"
  in
  expect_error (fun () -> Inject.Injector.create ~seed:1L ~rate:1.5 ());
  expect_error (fun () -> Inject.Injector.create ~seed:1L ~rate:(-0.1) ());
  expect_error (fun () -> Inject.Injector.create ~seed:1L ~rate:0.5 ~sites:[] ())

(* ---------------- watchdog --------------------------------------- *)

let find_kernel name =
  List.find
    (fun (k : Vir.Kernels.sized) -> String.equal k.kname name)
    Vir.Kernels.pathological

let expect_watchdog ~reason_substr f =
  match f () with
  | () -> Alcotest.fail "watchdog did not trip"
  | exception Machine.Sim_error.Error e ->
    Alcotest.(check string) "component" "watchdog" e.component;
    let reason =
      match List.assoc_opt "reason" e.context with Some r -> r | None -> ""
    in
    Alcotest.(check bool)
      (Printf.sprintf "reason %S mentions %S" reason reason_substr)
      true
      (let n = String.length reason_substr in
       let rec go i =
         i + n <= String.length reason
         && (String.sub reason i n = reason_substr || go (i + 1))
       in
       go 0)

let test_watchdog_no_progress () =
  let t = Workload.alpha in
  let k = find_kernel "spin" in
  let l = Workload.load t ~buildset:"one_min" k.program in
  expect_watchdog ~reason_substr:"no forward progress" (fun () ->
      Inject.Watchdog.run_guarded
        ~config:{ max_instructions = 1_000_000; max_seconds = None; deadline = None; check_interval = 512 }
        l.iface)

let test_watchdog_budget () =
  (* count_forever mutates a register each step, so it is never a state
     fixed point; only the instruction budget can stop it *)
  let t = Workload.alpha in
  let k = find_kernel "count_forever" in
  let l = Workload.load t ~buildset:"one_min" k.program in
  expect_watchdog ~reason_substr:"budget" (fun () ->
      Inject.Watchdog.run_guarded
        ~config:{ max_instructions = 20_000; max_seconds = None; deadline = None; check_interval = 512 }
        l.iface)

let test_watchdog_passes_terminating () =
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.test_suite 0 in
  let l = Workload.load t ~buildset:"one_min" k.program in
  Inject.Watchdog.run_guarded l.iface;
  Alcotest.(check bool) "halted normally" true l.iface.st.halted

(* ---------------- qcheck: rollback is byte-exact ------------------ *)

let rollback_exact_prop =
  QCheck.Test.make ~count:20 ~name:"specul rollback undoes injected corruption"
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, trials) ->
      let cfg =
        {
          Inject.Campaign.default_config with
          seed = Int64.of_int seed;
          spec_trials = trials;
        }
      in
      let t = Workload.alpha in
      let k = List.nth Vir.Kernels.test_suite 3 in
      let ran, exact = Inject.Campaign.run_spec_trials t k cfg in
      ran = trials && exact = ran)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "campaign deterministic" `Slow test_campaign_deterministic;
    Alcotest.test_case "campaign coverage >= 95%" `Slow test_campaign_coverage;
    Alcotest.test_case "memory corruption repaired" `Slow
      test_memory_corruption_repaired;
    Alcotest.test_case "rollback under injection" `Slow
      test_rollback_under_injection;
    Alcotest.test_case "injector rejects bad config" `Quick
      test_injector_rejects_bad_config;
    Alcotest.test_case "watchdog: no progress" `Quick test_watchdog_no_progress;
    Alcotest.test_case "watchdog: budget" `Quick test_watchdog_budget;
    Alcotest.test_case "watchdog: terminating run passes" `Quick
      test_watchdog_passes_terminating;
    QCheck_alcotest.to_alcotest rollback_exact_prop;
  ]
