(** Model-based property tests for the trickiest ISA semantics: the ARM
    shifter operand, PPC's rlwinm mask machinery, and Alpha's byte-zapper
    are each checked against independent OCaml models on random inputs.
    All four properties drive {!Gen_common.run_single} — one shared
    interface per ISA, one staged instruction per check. *)

let arm_iface = Gen_common.one_all Isa_arm.Arm.spec
let ppc_iface = Gen_common.one_all Isa_ppc.Ppc.spec
let alpha_iface = Gen_common.one_all Isa_alpha.Alpha.spec

(* ----------------------------------------------------------------- *)
(* ARM shifter operand (register shifted by immediate)                 *)
(* ----------------------------------------------------------------- *)

(* Independent model of the ARM v5 shifter (value only; carry is checked
   by targeted unit tests in test_arm.ml). *)
let arm_shifter_model ~typ ~imm5 ~rm ~carry_in =
  let rm = Int64.logand rm 0xFFFFFFFFL in
  let mask v = Int64.logand v 0xFFFFFFFFL in
  match typ with
  | 0 (* LSL *) -> mask (Int64.shift_left rm imm5)
  | 1 (* LSR *) -> if imm5 = 0 then 0L else Int64.shift_right_logical rm imm5
  | 2 (* ASR *) ->
    let s = Semir.Value.sext rm 32 in
    mask (Int64.shift_right s (if imm5 = 0 then 32 else imm5))
  | _ (* ROR / RRX *) ->
    if imm5 = 0 then
      mask
        (Int64.logor
           (Int64.shift_left (if carry_in then 1L else 0L) 31)
           (Int64.shift_right_logical rm 1))
    else
      mask
        (Int64.logor
           (Int64.shift_right_logical rm imm5)
           (Int64.shift_left rm (32 - imm5)))

let run_arm_mov ~typ ~imm5 ~rm_val ~carry_in =
  let st =
    Gen_common.run_single arm_iface
      ~pre:(fun st ->
        Machine.Regfile.write st.regs ~cls:0 ~idx:2 rm_val;
        Machine.Regfile.write st.regs ~cls:1 ~idx:2
          (if carry_in then 1L else 0L))
      (Isa_arm.Arm_asm.dp_reg ~op:13 ~rn:0 ~rd:1 ~rm:2 ~shift_type:typ
         ~shift_imm:imm5 ())
  in
  Machine.Regfile.read st.regs ~cls:0 ~idx:1

let prop_arm_shifter =
  QCheck.Test.make ~count:300 ~name:"ARM shifter matches independent model"
    QCheck.(quad (int_bound 3) (int_bound 31) (map Int64.of_int int) bool)
    (fun (typ, imm5, rm, carry_in) ->
      let rm = Int64.logand rm 0xFFFFFFFFL in
      Int64.equal
        (run_arm_mov ~typ ~imm5 ~rm_val:rm ~carry_in)
        (arm_shifter_model ~typ ~imm5 ~rm ~carry_in))

(* ----------------------------------------------------------------- *)
(* PPC rlwinm                                                          *)
(* ----------------------------------------------------------------- *)

let rlwinm_model ~rs ~sh ~mb ~me =
  let rs = Int64.logand rs 0xFFFFFFFFL in
  let rot =
    Int64.logand
      (Int64.logor (Int64.shift_left rs sh) (Int64.shift_right_logical rs (32 - sh)))
      0xFFFFFFFFL
  in
  (* mask of msb-first bit positions mb..me (wrapping) *)
  let bit i = Int64.shift_left 1L (31 - i) in
  let mask = ref 0L in
  let i = ref mb in
  let continue = ref true in
  while !continue do
    mask := Int64.logor !mask (bit !i);
    if !i = me then continue := false else i := (!i + 1) mod 32
  done;
  Int64.logand rot !mask

let run_ppc_rlwinm ~rs_val ~sh ~mb ~me =
  let st =
    Gen_common.run_single ppc_iface
      ~pre:(fun st -> Machine.Regfile.write st.regs ~cls:0 ~idx:5 rs_val)
      (Isa_ppc.Ppc_asm.rlwinm ~ra:3 ~rs:5 ~sh ~mb ~me ())
  in
  Machine.Regfile.read st.regs ~cls:0 ~idx:3

let prop_ppc_rlwinm =
  QCheck.Test.make ~count:300 ~name:"PPC rlwinm matches independent model"
    QCheck.(quad (map Int64.of_int int) (int_bound 31) (int_bound 31) (int_bound 31))
    (fun (rs, sh, mb, me) ->
      let rs = Int64.logand rs 0xFFFFFFFFL in
      Int64.equal (run_ppc_rlwinm ~rs_val:rs ~sh ~mb ~me)
        (rlwinm_model ~rs ~sh ~mb ~me))

(* ----------------------------------------------------------------- *)
(* Alpha ZAPNOT                                                        *)
(* ----------------------------------------------------------------- *)

let zapnot_model ~ra ~lit =
  let m = ref 0L in
  for i = 0 to 7 do
    if lit land (1 lsl i) <> 0 then
      m := Int64.logor !m (Int64.shift_left 0xFFL (8 * i))
  done;
  Int64.logand ra !m

let run_alpha_zapnot ~ra_val ~lit =
  let st =
    Gen_common.run_single alpha_iface
      ~pre:(fun st -> Machine.Regfile.write st.regs ~cls:0 ~idx:2 ra_val)
      (Isa_alpha.Alpha_asm.zapnot_lit ~ra:2 ~lit ~rc:1)
  in
  Machine.Regfile.read st.regs ~cls:0 ~idx:1

let prop_alpha_zapnot =
  QCheck.Test.make ~count:300 ~name:"Alpha zapnot matches independent model"
    QCheck.(pair (map Int64.of_int int) (int_bound 255))
    (fun (ra, lit) ->
      Int64.equal (run_alpha_zapnot ~ra_val:ra ~lit) (zapnot_model ~ra ~lit))

(* ----------------------------------------------------------------- *)
(* ARM flag semantics vs a 33-bit adder model                          *)
(* ----------------------------------------------------------------- *)

let run_arm_adds ~a ~b =
  let st =
    Gen_common.run_single arm_iface
      ~pre:(fun st ->
        Machine.Regfile.write st.regs ~cls:0 ~idx:2 a;
        Machine.Regfile.write st.regs ~cls:0 ~idx:3 b)
      (Isa_arm.Arm_asm.dp_reg ~s:true ~op:4 ~rn:2 ~rd:1 ~rm:3 ())
  in
  let f i = Machine.Regfile.read st.regs ~cls:1 ~idx:i in
  (Machine.Regfile.read st.regs ~cls:0 ~idx:1, f 0, f 1, f 2, f 3)

let prop_arm_add_flags =
  QCheck.Test.make ~count:300 ~name:"ARM ADDS flags match 33-bit adder model"
    QCheck.(pair (map Int64.of_int int) (map Int64.of_int int))
    (fun (a, b) ->
      let a = Int64.logand a 0xFFFFFFFFL and b = Int64.logand b 0xFFFFFFFFL in
      let sum = Int64.add a b in
      let result = Int64.logand sum 0xFFFFFFFFL in
      let n = Int64.shift_right_logical result 31 in
      let z = if Int64.equal result 0L then 1L else 0L in
      let c = Int64.shift_right_logical sum 32 in
      let sa = Semir.Value.sext a 32 and sb = Semir.Value.sext b 32 in
      let ssum = Int64.add sa sb in
      let v =
        if Int64.compare ssum (Int64.of_int32 Int32.min_int) < 0
           || Int64.compare ssum (Int64.of_int32 Int32.max_int) > 0
        then 1L
        else 0L
      in
      run_arm_adds ~a ~b = (result, n, z, c, v))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_arm_shifter;
    QCheck_alcotest.to_alcotest prop_ppc_rlwinm;
    QCheck_alcotest.to_alcotest prop_alpha_zapnot;
    QCheck_alcotest.to_alcotest prop_arm_add_flags;
  ]
