(** Observability layer: ring wrap-around and ordering, histogram bucket
    boundaries and merge, counter/snapshot isolation, exporter round
    trips (JSONL and the Chrome trace-event format), and a qcheck
    property tying entrypoint-crossing counts to executed instructions
    for every buildset of the alpha ISA. *)

(* ---------------- ring buffer ------------------------------------ *)

let ev ?(ts = 0L) ?(dur = 0) ?(args = []) name =
  (ts, dur, name, args)

let record_all ring evs =
  List.iter
    (fun (ts_ns, dur_ns, name, args) ->
      Obs.Ring.record ring ~ts_ns ~dur_ns ~name ~cat:"test" ~args)
    evs

let names ring =
  List.map (fun (e : Obs.Ring.event) -> e.name) (Obs.Ring.to_list ring)

let test_ring_basic () =
  let r = Obs.Ring.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Obs.Ring.capacity r);
  Alcotest.(check int) "empty length" 0 (Obs.Ring.length r);
  Alcotest.(check (list string)) "empty list" [] (names r);
  record_all r [ ev "a"; ev "b"; ev "c" ];
  Alcotest.(check int) "length" 3 (Obs.Ring.length r);
  Alcotest.(check int) "total" 3 (Obs.Ring.total_recorded r);
  Alcotest.(check (list string)) "oldest first" [ "a"; "b"; "c" ] (names r)

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:4 in
  record_all r (List.init 10 (fun i -> ev (Printf.sprintf "e%d" i)));
  Alcotest.(check int) "length capped" 4 (Obs.Ring.length r);
  Alcotest.(check int) "total counts everything" 10 (Obs.Ring.total_recorded r);
  Alcotest.(check (list string))
    "most recent, oldest first"
    [ "e6"; "e7"; "e8"; "e9" ]
    (names r)

let test_ring_exact_fill () =
  (* filling to exactly capacity must not drop or rotate anything *)
  let r = Obs.Ring.create ~capacity:4 in
  record_all r (List.init 4 (fun i -> ev (Printf.sprintf "e%d" i)));
  Alcotest.(check (list string)) "full, in order" [ "e0"; "e1"; "e2"; "e3" ] (names r);
  record_all r [ ev "e4" ];
  Alcotest.(check (list string))
    "one past capacity evicts the oldest"
    [ "e1"; "e2"; "e3"; "e4" ]
    (names r)

let test_ring_clear () =
  let r = Obs.Ring.create ~capacity:4 in
  record_all r (List.init 7 (fun i -> ev (Printf.sprintf "e%d" i)));
  Obs.Ring.clear r;
  Alcotest.(check int) "length" 0 (Obs.Ring.length r);
  Alcotest.(check int) "total" 0 (Obs.Ring.total_recorded r);
  record_all r [ ev "x" ];
  Alcotest.(check (list string)) "usable after clear" [ "x" ] (names r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* ---------------- histograms ------------------------------------- *)

let test_hist_bucket_boundaries () =
  (* bucket 0 absorbs 0, 1 and negatives; bucket i holds [2^i, 2^(i+1)) *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Obs.Hist.bucket_of v))
    [
      (-5, 0); (0, 0); (1, 0);
      (2, 1); (3, 1);
      (4, 2); (7, 2);
      (8, 3); (15, 3);
      (1023, 9); (1024, 10); (2047, 10); (2048, 11);
    ];
  Alcotest.(check int) "bucket_lo 0" 0 (Obs.Hist.bucket_lo 0);
  Alcotest.(check int) "bucket_hi 0" 1 (Obs.Hist.bucket_hi 0);
  Alcotest.(check int) "bucket_lo 10" 1024 (Obs.Hist.bucket_lo 10);
  Alcotest.(check int) "bucket_hi 10" 2047 (Obs.Hist.bucket_hi 10);
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.record h) [ 0; 1; 2; 3; 4; 7; 1024 ];
  Alcotest.(check (list (triple int int int)))
    "nonzero buckets, low to high"
    [ (0, 1, 2); (2, 3, 2); (4, 7, 2); (1024, 2047, 1) ]
    (Obs.Hist.nonzero_buckets h);
  Alcotest.(check int) "count" 7 (Obs.Hist.count h);
  Alcotest.(check int) "sum ignores sign-free zero floor" (0 + 1 + 2 + 3 + 4 + 7 + 1024) (Obs.Hist.sum h);
  Alcotest.(check int) "max" 1024 (Obs.Hist.max_value h)

let test_hist_negative_sample () =
  (* a clock step backwards must round to zero, not corrupt the sum *)
  let h = Obs.Hist.create () in
  Obs.Hist.record h (-100);
  Obs.Hist.record h 6;
  Alcotest.(check int) "count" 2 (Obs.Hist.count h);
  Alcotest.(check int) "sum floors negatives at 0" 6 (Obs.Hist.sum h);
  Alcotest.(check int) "max untouched by negatives" 6 (Obs.Hist.max_value h)

let test_hist_merge () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  List.iter (Obs.Hist.record a) [ 2; 3; 100 ];
  List.iter (Obs.Hist.record b) [ 2; 5000 ];
  Obs.Hist.merge ~into:a b;
  Alcotest.(check int) "count adds" 5 (Obs.Hist.count a);
  Alcotest.(check int) "sum adds" (2 + 3 + 100 + 2 + 5000) (Obs.Hist.sum a);
  Alcotest.(check int) "max combines" 5000 (Obs.Hist.max_value a);
  Alcotest.(check (list (triple int int int)))
    "bucket counts combine"
    [ (2, 3, 3); (64, 127, 1); (4096, 8191, 1) ]
    (Obs.Hist.nonzero_buckets a);
  (* src is untouched *)
  Alcotest.(check int) "src count unchanged" 2 (Obs.Hist.count b)

let test_hist_percentile () =
  let h = Obs.Hist.create () in
  for _ = 1 to 99 do
    Obs.Hist.record h 10
  done;
  Obs.Hist.record h 100_000;
  (* p50 lands in the [8,15] bucket but is capped by the recorded max *)
  Alcotest.(check int) "p50" 15 (Obs.Hist.percentile h 50.);
  Alcotest.(check int) "p100 is the max" 100_000 (Obs.Hist.percentile h 100.);
  Alcotest.(check int) "empty percentile" 0
    (Obs.Hist.percentile (Obs.Hist.create ()) 50.)

let test_hist_percentile_edges () =
  let empty = Obs.Hist.create () in
  Alcotest.(check (option int)) "empty -> None" None
    (Obs.Hist.percentile_opt empty 50.);
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.record h) [ 10; 10; 700 ];
  (* p <= 0: rank clamps to 1, the lowest non-empty bucket's upper bound *)
  Alcotest.(check int) "p0 = lowest bucket hi" 15 (Obs.Hist.percentile h 0.);
  Alcotest.(check int) "negative p clamps too" 15 (Obs.Hist.percentile h (-5.));
  (* ranks round up: p50 of 3 samples is rank 2, still in [8,15] *)
  Alcotest.(check int) "p50 rank ceils" 15 (Obs.Hist.percentile h 50.);
  (* rank 3 lands in [512,1023] but is capped at the recorded max *)
  Alcotest.(check int) "capped at max" 700 (Obs.Hist.percentile h 67.);
  Alcotest.(check int) "p>100 clamps to max" 700 (Obs.Hist.percentile h 150.);
  Alcotest.(check (option int)) "opt agrees when non-empty" (Some 700)
    (Obs.Hist.percentile_opt h 100.)

(* Renderers must not turn "no samples" into a literal 0 percentile. *)
let test_export_empty_hist_percentiles () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.histogram reg "e.h");
  match Obs.Export.json_of_snapshot (Obs.Registry.snapshot reg) with
  | Obs.Export.Obj [ ("e.h", Obs.Export.Obj fields) ] ->
    Alcotest.(check bool) "p50 is null" true
      (List.assoc "p50" fields = Obs.Export.Null);
    Alcotest.(check bool) "p99 is null" true
      (List.assoc "p99" fields = Obs.Export.Null);
    Alcotest.(check bool) "count is 0" true
      (List.assoc "count" fields = Obs.Export.Int 0L)
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* Satellite: every renderer consumes the name-sorted snapshot, so
   output order is deterministic regardless of registration order. *)
let test_export_ordering_stable () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.counter reg "z.last");
  ignore (Obs.Registry.histogram reg "m.mid");
  ignore (Obs.Registry.counter reg "a.first");
  let snap = Obs.Registry.snapshot reg in
  Alcotest.(check (list string)) "snapshot is name-sorted"
    [ "a.first"; "m.mid"; "z.last" ]
    (List.map fst snap);
  (match Obs.Export.json_of_snapshot snap with
  | Obs.Export.Obj kvs ->
    Alcotest.(check (list string)) "json keys sorted"
      [ "a.first"; "m.mid"; "z.last" ]
      (List.map fst kvs)
  | _ -> Alcotest.fail "unexpected snapshot shape");
  let pp = Format.asprintf "%a" Obs.Export.pp_snapshot snap in
  let pos name =
    let rec find i =
      if i + String.length name > String.length pp then -1
      else if String.sub pp i (String.length name) = name then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "pp order a < m" true (pos "a.first" < pos "m.mid");
  Alcotest.(check bool) "pp order m < z" true (pos "m.mid" < pos "z.last")

(* ---------------- registry --------------------------------------- *)

let test_counter_identity () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "x.a" in
  Obs.Registry.incr c;
  Obs.Registry.add c 4;
  (* find-or-create returns the same underlying cell *)
  let c' = Obs.Registry.counter reg "x.a" in
  Alcotest.(check int) "shared cell" 5 (Obs.Registry.get c')

let test_snapshot_isolation () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "x.a" in
  let h = Obs.Registry.histogram reg "x.h" in
  Obs.Registry.add c 5;
  Obs.Hist.record h 4;
  let snap = Obs.Registry.snapshot reg in
  Obs.Registry.add c 100;
  Obs.Hist.record h 4;
  Obs.Hist.record h 4;
  Alcotest.(check (option int)) "counter frozen" (Some 5)
    (Obs.Registry.find_int snap "x.a");
  (match Obs.Registry.find snap "x.h" with
  | Some (Obs.Registry.Histogram hc) ->
    Alcotest.(check int) "histogram deep-copied" 1 (Obs.Hist.count hc)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (* snapshots also survive reset *)
  Obs.Registry.reset reg;
  Alcotest.(check (option int)) "snapshot survives reset" (Some 5)
    (Obs.Registry.find_int snap "x.a");
  Alcotest.(check (option int)) "live counter reset" (Some 0)
    (Obs.Registry.find_int (Obs.Registry.snapshot reg) "x.a")

let test_probe_first_wins () =
  let reg = Obs.Registry.create () in
  Obs.Registry.probe reg "x.gauge" (fun () -> Obs.Registry.Int 1);
  Obs.Registry.probe reg "x.gauge" (fun () -> Obs.Registry.Int 2);
  Alcotest.(check (option int)) "first registration wins" (Some 1)
    (Obs.Registry.find_int (Obs.Registry.snapshot reg) "x.gauge");
  (* probes re-sample at snapshot time and survive reset *)
  let n = ref 10 in
  Obs.Registry.probe reg "x.live" (fun () -> Obs.Registry.Int !n);
  n := 11;
  Alcotest.(check (option int)) "probe samples at snapshot" (Some 11)
    (Obs.Registry.find_int (Obs.Registry.snapshot reg) "x.live");
  Obs.Registry.reset reg;
  Alcotest.(check (option int)) "probe unaffected by reset" (Some 11)
    (Obs.Registry.find_int (Obs.Registry.snapshot reg) "x.live")

(* ---------------- exporters -------------------------------------- *)

let sample_events =
  [
    {
      Obs.Ring.ts_ns = 1_000L;
      dur_ns = 250;
      name = "LDQ \"quoted\"";
      cat = "instr";
      args = [ ("pc", Obs.Ring.I 4096L); ("note", Obs.Ring.S "a\nb\t\\") ];
    };
    {
      Obs.Ring.ts_ns = 2_500L;
      dur_ns = 0;
      name = "block";
      cat = "block";
      args = [ ("frac", Obs.Ring.F 0.5) ];
    };
  ]

let test_json_roundtrip () =
  let open Obs.Export in
  let doc =
    Obj
      [
        ("i", Int 42L);
        ("neg", Int (-7L));
        ("f", Float 1.5);
        ("s", Str "a\"b\\c\nd\te\r \x01");
        ("b", Bool true);
        ("n", Null);
        ("arr", Arr [ Int 1L; Str "x"; Obj [] ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (parse (to_string doc) = doc);
  Alcotest.(check bool) "bad json rejected" true (parse_opt "{\"a\": " = None);
  Alcotest.(check bool) "trailing data rejected" true (parse_opt "1 2" = None)

let test_jsonl_export () =
  let lines =
    String.split_on_char '\n' (Obs.Export.jsonl_of_events sample_events)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Export.parse_opt line with
      | Some (Obs.Export.Obj kvs) ->
        Alcotest.(check bool) "has name" true (List.mem_assoc "name" kvs);
        Alcotest.(check bool) "has ts_ns" true (List.mem_assoc "ts_ns" kvs)
      | _ -> Alcotest.fail "line is not a JSON object")
    lines;
  (match Obs.Export.parse_opt (List.hd lines) with
  | Some j ->
    Alcotest.(check bool) "escaped name survives" true
      (Obs.Export.member "name" j = Some (Obs.Export.Str "LDQ \"quoted\""))
  | None -> Alcotest.fail "unparseable first line")

let test_chrome_export () =
  let open Obs.Export in
  let doc = to_string (chrome_of_events sample_events) in
  let j = parse doc in
  (match member "displayTimeUnit" j with
  | Some (Str "ns") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  match member "traceEvents" j with
  | Some (Arr evs) ->
    Alcotest.(check int) "all events exported" 2 (List.length evs);
    List.iter
      (fun e ->
        (* the fields Perfetto / chrome://tracing require of a complete
           event: name, ph="X", ts (µs), dur, pid, tid *)
        Alcotest.(check bool) "ph is X" true (member "ph" e = Some (Str "X"));
        List.iter
          (fun field ->
            match member field e with
            | Some (Int _ | Float _ | Str _) -> ()
            | _ -> Alcotest.fail (field ^ " missing"))
          [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
      evs;
    (* microsecond conversion: 1000 ns -> 1.0 µs *)
    (match member "ts" (List.hd evs) with
    | Some (Float us) -> Alcotest.(check (float 1e-9)) "ts in µs" 1.0 us
    | _ -> Alcotest.fail "ts not a float")
  | _ -> Alcotest.fail "traceEvents missing"

(* An instrumented run end-to-end: the ring fills with real instruction
   events and the Chrome export of that ring parses and keeps them all —
   the CLI's run --trace-out path without the process spawn. *)
let test_chrome_export_from_run () =
  let o = Obs.create ~ring_capacity:64 () in
  let k = List.hd Vir.Kernels.pathological (* spin *) in
  let l = Workload.load ~obs:o Workload.alpha ~buildset:"one_all" k.program in
  let executed = Specsim.Iface.run_n l.iface 100 in
  Alcotest.(check bool) "ran instructions" true (executed >= 100);
  let events = Obs.events o in
  Alcotest.(check int) "ring capped" 64 (List.length events);
  let j = Obs.Export.parse (Obs.Export.to_string (Obs.Export.chrome_of_events events)) in
  match Obs.Export.member "traceEvents" j with
  | Some (Obs.Export.Arr evs) ->
    Alcotest.(check int) "every ring event exported" 64 (List.length evs)
  | _ -> Alcotest.fail "traceEvents missing"

(* ---------------- crossings property ----------------------------- *)

(* The synthesized instrumentation counts one crossing per entrypoint
   call. Driving N instructions of the never-halting spin kernel must
   give exactly N * n_entrypoints crossings for per-instruction
   interfaces and N for block interfaces (each executed site is one
   crossing of the block entrypoint) — for every buildset of the ISA. *)
let test_crossings_property =
  let spec = Lazy.force Workload.alpha.spec in
  let buildsets = Lis.Spec.buildset_names spec in
  QCheck.Test.make ~count:15 ~name:"entrypoint crossings = instrs * entrypoints"
    QCheck.(int_range 1 200)
    (fun budget ->
      let k = List.hd Vir.Kernels.pathological (* spin: never halts *) in
      List.for_all
        (fun bs ->
          let o = Obs.create () in
          let l = Workload.load ~obs:o Workload.alpha ~buildset:bs k.program in
          let executed = Specsim.Iface.run_n l.iface budget in
          let n_eps =
            if l.iface.bs.bs_block then 1
            else Specsim.Iface.n_entrypoints l.iface
          in
          let snap = Obs.snapshot o in
          match Obs.Registry.find_int snap "synth.entrypoint_calls" with
          | Some crossings -> crossings = executed * n_eps
          | None -> false)
        buildsets)

let test_twelve_buildsets () =
  (* the property above must quantify over the full paper matrix *)
  let spec = Lazy.force Workload.alpha.spec in
  Alcotest.(check int) "twelve buildsets" 12
    (List.length (Lis.Spec.buildset_names spec))

let suite =
  [
    Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
    Alcotest.test_case "ring exact fill" `Quick test_ring_exact_fill;
    Alcotest.test_case "ring clear" `Quick test_ring_clear;
    Alcotest.test_case "ring bad capacity" `Quick test_ring_bad_capacity;
    Alcotest.test_case "hist bucket boundaries" `Quick test_hist_bucket_boundaries;
    Alcotest.test_case "hist negative sample" `Quick test_hist_negative_sample;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "hist percentile" `Quick test_hist_percentile;
    Alcotest.test_case "hist percentile edges" `Quick test_hist_percentile_edges;
    Alcotest.test_case "export empty-hist percentiles" `Quick
      test_export_empty_hist_percentiles;
    Alcotest.test_case "export ordering stable" `Quick
      test_export_ordering_stable;
    Alcotest.test_case "counter identity" `Quick test_counter_identity;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "probe first wins" `Quick test_probe_first_wins;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "chrome export from run" `Quick test_chrome_export_from_run;
    QCheck_alcotest.to_alcotest test_crossings_property;
    Alcotest.test_case "twelve buildsets" `Quick test_twelve_buildsets;
  ]
