(** lislint tests: one golden diagnostic per code, a qcheck property
    pinning the decoder-overlap pass to brute-force decoding, lint
    stability across a pretty-print round trip, and semantic-error
    accumulation. *)

let header =
  {|
isa "t" { endian little; wordsize 64; instrsize 4; decodekey 26 6; }

regclass GPR 32 width 64 zero 31;

class rr {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(11,5)] write;
}
|}

let sources_of ?(bs = "") text : Lis.Ast.source list =
  { Lis.Ast.src_role = Lis.Ast.Isa_description;
    src_name = "t.lis";
    src_text = header ^ text }
  ::
  (if bs = "" then []
   else
     [ { Lis.Ast.src_role = Lis.Ast.Buildset_file;
         src_name = "t_buildsets.lis";
         src_text = bs } ])

let lint ?(flags = []) ?bs text : Analysis.Diag.t list =
  let spec = Lis.Sema.load (sources_of ?bs text) in
  match Analysis.Lint.run ~flags spec with
  | Ok ds -> ds
  | Error m -> Alcotest.fail m

let codes ds =
  List.sort_uniq compare (List.map (fun d -> d.Analysis.Diag.code) ds)

let find_code code ds =
  match List.find_opt (fun d -> d.Analysis.Diag.code = code) ds with
  | Some d -> d
  | None ->
    Alcotest.failf "expected a %s diagnostic, got: %s" code
      (String.concat " " (codes ds))

let check_code ?severity ?msg code ds =
  let d = find_code code ds in
  (match severity with
  | Some sev ->
    Alcotest.(check string)
      (code ^ " severity")
      (Analysis.Diag.severity_name sev)
      (Analysis.Diag.severity_name d.Analysis.Diag.severity)
  | None -> ());
  match msg with
  | Some sub ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    if not (contains d.Analysis.Diag.message sub) then
      Alcotest.failf "%s message %S does not mention %S" code
        d.Analysis.Diag.message sub
  | None -> ()

let no_code code ds =
  if List.exists (fun d -> d.Analysis.Diag.code = code) ds then
    Alcotest.failf "unexpected %s diagnostic" code

(* ------------------------------------------------------------------ *)
(* Golden diagnostics, one per code                                    *)
(* ------------------------------------------------------------------ *)

let test_clean_spec () =
  let ds =
    lint
      {|
instr ADD : rr match 0x40000000 mask 0xFC0007FF {
  action address { }
  action memory { }
  action exception { }
  action evaluate { rc = ra + rb; }
}
|}
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes ds)

let test_l010_shadowed () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
instr B : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra - rb; }
}
|}
  in
  let d = find_code "L010" ds in
  Alcotest.(check bool) "error severity" true
    (d.Analysis.Diag.severity = Analysis.Diag.Error);
  check_code ~msg:"unreachable" "L010" ds;
  (* the diagnostic anchors at the shadowed (later) instruction *)
  Alcotest.(check bool) "related points at the winner" true
    (d.Analysis.Diag.related <> [])

let test_l010_specialization_exempt () =
  (* a specialized pattern before the general one is the documented
     idiom: no diagnostic at all *)
  let ds =
    lint
      {|
instr SPECIAL : rr match 0x40000001 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
instr GENERAL : rr match 0x40000000 mask 0xFC000000 {
  action evaluate { rc = ra - rb; }
}
|}
  in
  no_code "L010" ds;
  no_code "L011" ds

let test_l011_partial_overlap () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC000700 {
  action evaluate { rc = ra + rb; }
}
instr B : rr match 0x40000000 mask 0xFC000007 {
  action evaluate { rc = ra - rb; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"overlap" "L011" ds;
  no_code "L010" ds

let test_l012_coverage_off_by_default () =
  let body =
    {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
|}
  in
  no_code "L012" (lint body);
  check_code ~severity:Analysis.Diag.Note "L012" (lint ~flags:[ "coverage" ] body)

let test_l020_uninitialized_read () =
  let ds =
    lint
      {|
field never_set : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = never_set; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Error ~msg:"never written" "L020" ds

let test_l021_maybe_uninitialized () =
  let ds =
    lint
      {|
field f : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate {
    if (ra == 0) { f = rb; }
    rc = f;
  }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"some paths" "L021" ds;
  no_code "L020" ds

let test_l021_guarded_read_is_fine () =
  let ds =
    lint
      {|
field f : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate {
    if (ra == 0) { f = rb; }
    if (ra == 0) { rc = f; } else { rc = rb; }
  }
}
|}
  in
  no_code "L021" ds;
  no_code "L020" ds

let test_l030_write_only_field () =
  let ds =
    lint
      {|
field dead : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { dead = ra; rc = ra + rb; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"never read" "L030" ds

let test_l031_unused_operand_fetch () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"never used" "L031" ds

let test_l032_statement_after_fault () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
  action exception { fault illegal; rc = 1; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"fault" "L032" ds

let test_l033_dead_next_pc () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate {
    rc = ra + rb;
    next_pc = pc + 8;
    next_pc = pc + 4;
  }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"overwritten" "L033" ds

let test_l034_undefined_sequence_action () =
  (* the default sequence names address/memory/exception; an ISA where no
     instruction defines them gets one L034 per missing action *)
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"no instruction" "L034" ds

let spec_buildsets =
  {|
buildset one_all_spec {
  speculation on;
  visibility all;
  entrypoint go = fetch, decode, read_operands, address, evaluate, memory, writeback, exception;
}
|}

let test_l040_store_after_syscall () =
  let ds =
    lint ~bs:spec_buildsets
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
  action exception { syscall; store.u64(ra, 1); }
}
|}
  in
  check_code ~severity:Analysis.Diag.Error ~msg:"syscall" "L040" ds

let test_l040_needs_speculative_buildset () =
  (* the same body without any speculative buildset is not a rollback
     hazard: nothing ever rolls back *)
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
  action exception { syscall; store.u64(ra, 1); }
}
|}
  in
  no_code "L040" ds

let test_l050_bitfield_out_of_word () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = bits(28, 8); }
}
|}
  in
  check_code ~severity:Analysis.Diag.Error ~msg:"32 bits" "L050" ds

let test_l051_degenerate_shift () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra << 77; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"modulo" "L051" ds

let test_l052_lossy_extension () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = sext(bits(0,16), 8); }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"discards" "L052" ds

let test_l060_hidden_crossing () =
  let ds =
    lint
      ~bs:
        {|
buildset split_min {
  speculation off;
  visibility min;
  entrypoint front = fetch, decode, read_operands, address, evaluate;
  entrypoint back = memory, writeback, exception;
}
|}
      {|
field scratch : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action address { scratch = ra + rb; }
  action memory { rc = scratch; }
}
|}
  in
  let d = find_code "L060" ds in
  Alcotest.(check bool) "error severity" true
    (d.Analysis.Diag.severity = Analysis.Diag.Error);
  check_code ~msg:"hidden" "L060" ds

let test_l060_visible_crossing_is_fine () =
  let ds =
    lint
      ~bs:
        {|
buildset split_all {
  speculation off;
  visibility all;
  entrypoint front = fetch, decode, read_operands, address, evaluate;
  entrypoint back = memory, writeback, exception;
}
|}
      {|
field scratch : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action address { scratch = ra + rb; }
  action memory { rc = scratch; }
}
|}
  in
  no_code "L060" ds

(* ------------------------------------------------------------------ *)
(* Abstract-interpretation passes: L07x effect, L08x visibility, L09x  *)
(* journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_l070_architected_address () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action address { store.u64(ra, rb); }
  action evaluate { rc = ra; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"architected effect" "L070"
    ds;
  (* a field write inside [address] is the idiom, not an architected
     effect: the DI slot is scratch until the interface commits it *)
  no_code "L070"
    (lint
       {|
field eaddr : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action address { eaddr = ra + rb; }
  action memory { rc = eaddr; }
}
|})

let test_l071_clamped_reg_index () =
  let ds =
    lint
      {|
instr A match 0x40000000 mask 0xFC000000 {
  operand rx : GPR[bits(16,6)] read;
  operand rc : GPR[bits(11,5)] write;
  action evaluate { rc = rx; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"clamped" "L071" ds;
  (* a 5-bit field fits a 32-register class exactly *)
  no_code "L071"
    (lint
       {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
|})

let test_l072_provably_misaligned () =
  let ds =
    lint
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { store.u64((ra << 3) + 4, rb); rc = ra; }
}
|}
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"never be aligned" "L072" ds;
  (* drop the +4 and the same congruence proves alignment instead *)
  no_code "L072"
    (lint
       {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { store.u64(ra << 3, rb); rc = ra; }
}
|})

let one_entry_bs ~name ~spec ~vis =
  Printf.sprintf
    {|
buildset %s {
  speculation %s;
  visibility %s;
  entrypoint go = fetch, decode, read_operands, address, evaluate, memory, writeback, exception;
}
|}
    name spec vis

let test_l080_shown_never_written () =
  let body =
    {|
field never_set : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra + rb; }
}
|}
  in
  let ds =
    lint ~bs:(one_entry_bs ~name:"shown" ~spec:"off" ~vis:"show never_set") body
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"never written" "L080" ds;
  (* a policy visibility ([all]/[min]) is never second-guessed *)
  no_code "L080" (lint ~bs:(one_entry_bs ~name:"p" ~spec:"off" ~vis:"all") body)

let test_l081_shown_not_required () =
  let body =
    {|
field tmp : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { tmp = ra; rc = tmp; }
}
|}
  in
  let ds =
    lint ~bs:(one_entry_bs ~name:"shown" ~spec:"off" ~vis:"show tmp") body
  in
  check_code ~severity:Analysis.Diag.Note ~msg:"scratch local" "L081" ds;
  no_code "L080" ds;
  no_code "L081" (lint ~bs:(one_entry_bs ~name:"p" ~spec:"off" ~vis:"min") body)

let carrier_body =
  {|
field carry : u64;
instr W : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { carry = ra + rb; rc = ra; }
}
instr R : rr match 0x44000000 mask 0xFC0007FF {
  action evaluate { rc = (ra - rb) + carry; }
}
|}

let test_l090_hidden_carrier () =
  let ds =
    lint ~bs:(one_entry_bs ~name:"spec_min" ~spec:"on" ~vis:"min") carrier_body
  in
  check_code ~severity:Analysis.Diag.Error ~msg:"wrong-path" "L090" ds;
  no_code "L091" ds

let test_l091_visible_carrier () =
  let ds =
    lint
      ~bs:(one_entry_bs ~name:"spec_carry" ~spec:"on" ~vis:"show carry")
      carrier_body
  in
  check_code ~severity:Analysis.Diag.Warning ~msg:"re-supply" "L091" ds;
  no_code "L090" ds

let test_l09x_needs_speculation () =
  (* without speculation nothing ever rolls back, so a carrier is not a
     journal hazard *)
  let ds =
    lint ~bs:(one_entry_bs ~name:"plain" ~spec:"off" ~vis:"min") carrier_body
  in
  no_code "L090" ds;
  no_code "L091" ds

(* ------------------------------------------------------------------ *)
(* Diagnostic determinism, SARIF, --suggest-buildset                   *)
(* ------------------------------------------------------------------ *)

let dirty_body =
  {|
field never_set : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = never_set; }
}
instr B : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra << 77; }
}
|}

let test_diag_order_and_stability () =
  let render ds =
    Analysis.Diag.json_report ~unit_name:"t" ds
  in
  let a = render (lint dirty_body) and b = render (lint dirty_body) in
  Alcotest.(check string) "two runs render byte-identically" a b;
  (* the list is sorted with Diag.compare: re-sorting is the identity *)
  let ds = lint dirty_body in
  Alcotest.(check bool) "lint output already sorted" true
    (List.stable_sort Analysis.Diag.compare ds = ds)

let test_diag_dedup () =
  let span = Lis.Loc.dummy in
  let d pass =
    Analysis.Diag.make ~code:"L999" ~pass ~severity:Analysis.Diag.Note span
      "same finding"
  in
  let sorted = List.stable_sort Analysis.Diag.compare [ d "a"; d "b" ] in
  match Analysis.Diag.dedup sorted with
  | [ only ] -> Alcotest.(check string) "first pass wins" "a" only.pass
  | ds -> Alcotest.failf "expected 1 diagnostic after dedup, got %d"
            (List.length ds)

let test_sarif_report_parses () =
  let ds = lint dirty_body in
  let sarif = Analysis.Diag.sarif_report ~units:[ ("t", ds) ] in
  match Obs.Export.parse_opt sarif with
  | None -> Alcotest.fail "SARIF output is not valid JSON"
  | Some j ->
    Alcotest.(check (option string)) "version" (Some "2.1.0")
      (Obs.Export.member_string "version" j);
    (match Obs.Export.member "runs" j with
    | Some (Obs.Export.Arr [ run ]) ->
      (match Obs.Export.member "results" run with
      | Some (Obs.Export.Arr results) ->
        Alcotest.(check int) "one result per diagnostic" (List.length ds)
          (List.length results)
      | _ -> Alcotest.fail "run has no results array")
    | _ -> Alcotest.fail "expected exactly one run")

let test_suggest_buildset_roundtrip () =
  let body =
    {|
field tmp : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { tmp = ra; rc = tmp; }
}
|}
  in
  let bs = one_entry_bs ~name:"fat" ~spec:"off" ~vis:"show tmp" in
  let spec = Lis.Sema.load (sources_of ~bs body) in
  let sums = Analysis.Absint.summarize spec in
  let fat =
    match
      Array.to_list spec.buildsets
      |> List.find_opt (fun (b : Lis.Spec.buildset) -> b.bs_name = "fat")
    with
    | Some b -> b
    | None -> Alcotest.fail "buildset 'fat' not loaded"
  in
  match Analysis.Absint.suggest_buildset spec sums fat with
  | None -> Alcotest.fail "over-visible buildset should get a suggestion"
  | Some text ->
    (* the suggestion must be re-parseable LIS and lint clean of L08x *)
    let spec' =
      Lis.Sema.load
        (sources_of
           ~bs:text
           body)
    in
    (match Analysis.Lint.run spec' with
    | Ok ds ->
      no_code "L080" ds;
      no_code "L081" ds
    | Error m -> Alcotest.fail m);
    (* and the tightened buildset is a fixpoint: no further suggestion *)
    let fat' =
      Array.to_list spec'.buildsets
      |> List.find (fun (b : Lis.Spec.buildset) -> b.bs_name = "fat")
    in
    Alcotest.(check bool) "suggestion is minimal" true
      (Analysis.Absint.suggest_buildset spec'
         (Analysis.Absint.summarize spec')
         fat'
      = None)

let test_flag_selection () =
  let body =
    {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = ra; }
}
|}
  in
  (* -Wno-all silences everything *)
  Alcotest.(check (list string))
    "no-all" []
    (codes (lint ~flags:[ "no-all" ] body));
  (* -Wno-deadstate keeps other passes *)
  no_code "L031" (lint ~flags:[ "no-deadstate" ] body);
  (* unknown pass name is an error, not a crash *)
  let spec = Lis.Sema.load (sources_of body) in
  match Analysis.Lint.run ~flags:[ "bogus" ] spec with
  | Error m ->
    Alcotest.(check bool) "names the flag" true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected an unknown-pass error"

(* ------------------------------------------------------------------ *)
(* Property: the overlap pass agrees with brute-force decoding          *)
(* ------------------------------------------------------------------ *)

let overlap_property name (sources : Lis.Ast.source list) =
  let spec = Lis.Sema.load sources in
  let decoder = Specsim.Decoder.make spec in
  let pairs = Analysis.Passes.overlapping_pairs spec in
  let pair_ok i j = List.mem (min i j, max i j) pairs in
  let n = Array.length spec.instrs in
  let word_bits = spec.instr_bytes * 8 in
  let word_mask =
    if word_bits >= 64 then -1L
    else Int64.sub (Int64.shift_left 1L word_bits) 1L
  in
  (* mix uniform encodings with mutations of real match patterns so the
     property regularly exercises encodings that decode successfully *)
  let gen =
    QCheck.Gen.(
      frequency
        [
          (1, map (fun b -> Int64.logand b word_mask) int64);
          ( 3,
            map2
              (fun idx noise ->
                let i = spec.instrs.(abs idx mod n) in
                Int64.logand
                  (Int64.logor i.i_match
                     (Int64.logand noise (Int64.lognot i.i_mask)))
                  word_mask)
              int int64 );
        ])
  in
  let arb =
    QCheck.make ~print:(fun e -> Printf.sprintf "0x%Lx" e) gen
  in
  QCheck.Test.make ~count:500
    ~name:(name ^ ": overlap pass agrees with brute-force decode")
    arb
    (fun enc ->
      let matching = ref [] in
      for i = n - 1 downto 0 do
        let ins = spec.instrs.(i) in
        if Int64.equal (Int64.logand enc ins.i_mask) ins.i_match then
          matching := i :: !matching
      done;
      (* 1. the decoder returns the first declared match *)
      let expect = match !matching with [] -> -1 | i :: _ -> i in
      let got = Specsim.Decoder.decode decoder enc in
      if got <> expect then
        QCheck.Test.fail_reportf
          "decode 0x%Lx: decoder says %d, brute force says %d" enc got expect;
      (* 2. any two instructions sharing this encoding are reported as an
         overlapping pair by the analysis *)
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i < j && not (pair_ok i j) then
                QCheck.Test.fail_reportf
                  "0x%Lx matches both %s and %s but the pair is not \
                   reported by overlapping_pairs"
                  enc spec.instrs.(i).i_name spec.instrs.(j).i_name)
            !matching)
        !matching;
      true)

(* ------------------------------------------------------------------ *)
(* Lint stability across a pretty-print round trip                      *)
(* ------------------------------------------------------------------ *)

let reprint (sources : Lis.Ast.source list) : Lis.Ast.source list =
  List.map
    (fun (s : Lis.Ast.source) ->
      let decls = Lis.Parser.parse ~file:s.src_name s.src_text in
      { s with src_text = Lis.Pretty.to_string decls })
    sources

let lint_signature sources =
  let spec = Lis.Sema.load sources in
  match Analysis.Lint.run ~flags:[ "all" ] spec with
  | Ok ds ->
    List.sort compare
      (List.map (fun d -> (d.Analysis.Diag.code, d.Analysis.Diag.message)) ds)
  | Error m -> Alcotest.fail m

let check_lint_roundtrip name sources () =
  let before = lint_signature sources in
  let after = lint_signature (reprint sources) in
  Alcotest.(check (list (pair string string)))
    (name ^ ": lint unchanged by reprint")
    before after

(* a defect-dense description so the round trip compares something
   non-trivial: shadowing, uninitialized reads, dead state, rollback,
   width defects and a hidden crossing all at once *)
let dirty_sources =
  sources_of
    ~bs:
      {|
buildset split_min {
  speculation off;
  visibility min;
  entrypoint front = fetch, decode, read_operands, address, evaluate;
  entrypoint back = memory, writeback, exception;
}
buildset one_all_spec {
  speculation on;
  visibility all;
  entrypoint go = fetch, decode, read_operands, address, evaluate, memory, writeback, exception;
}
|}
    {|
field scratch : u64;
field dead : u64;
field never_set : u64;
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action address { scratch = ra + rb; }
  action memory { rc = scratch + never_set; }
}
instr B : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { dead = ra << 99; rc = sext(bits(0,16), 8); }
  action exception { syscall; store.u64(ra, 1); }
}
|}

(* ------------------------------------------------------------------ *)
(* Sema error accumulation                                              *)
(* ------------------------------------------------------------------ *)

let test_sema_accumulates_errors () =
  let sources =
    sources_of
      {|
instr A : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { rc = bogus_cell_a; }
}
instr B : rr match 0x40000001 mask 0xFC0007FF {
  action evaluate { rc = bogus_cell_b; }
}
|}
  in
  match Lis.Sema.load_all sources with
  | Ok _ -> Alcotest.fail "expected resolution errors"
  | Error errs ->
    Alcotest.(check bool)
      "both bad instructions reported" true
      (List.length errs >= 2);
    let text = String.concat "\n" (List.map snd errs) in
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length text
        && (String.sub text i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "mentions first" true (contains "bogus_cell_a");
    Alcotest.(check bool) "mentions second" true (contains "bogus_cell_b")

let test_sema_load_all_ok () =
  match Lis.Sema.load_all Demo_isa.sources with
  | Ok spec -> Alcotest.(check string) "name" "demo" spec.name
  | Error _ -> Alcotest.fail "demo must resolve"

(* ------------------------------------------------------------------ *)

let shipped_clean name sources () =
  let spec = Lis.Sema.load sources in
  match Analysis.Lint.run spec with
  | Ok [] -> ()
  | Ok ds ->
    Alcotest.failf "%s: expected a clean lint, got %d diagnostics (%s)" name
      (List.length ds)
      (String.concat " " (codes ds))
  | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "clean spec" `Quick test_clean_spec;
    Alcotest.test_case "L010 shadowed instruction" `Quick test_l010_shadowed;
    Alcotest.test_case "L010 specialization exempt" `Quick
      test_l010_specialization_exempt;
    Alcotest.test_case "L011 partial overlap" `Quick test_l011_partial_overlap;
    Alcotest.test_case "L012 coverage opt-in" `Quick
      test_l012_coverage_off_by_default;
    Alcotest.test_case "L020 uninitialized read" `Quick
      test_l020_uninitialized_read;
    Alcotest.test_case "L021 maybe-uninitialized" `Quick
      test_l021_maybe_uninitialized;
    Alcotest.test_case "L021 guarded read ok" `Quick
      test_l021_guarded_read_is_fine;
    Alcotest.test_case "L030 write-only field" `Quick test_l030_write_only_field;
    Alcotest.test_case "L031 unused operand fetch" `Quick
      test_l031_unused_operand_fetch;
    Alcotest.test_case "L032 statement after fault" `Quick
      test_l032_statement_after_fault;
    Alcotest.test_case "L033 dead next_pc write" `Quick test_l033_dead_next_pc;
    Alcotest.test_case "L034 undefined sequence action" `Quick
      test_l034_undefined_sequence_action;
    Alcotest.test_case "L040 store after syscall" `Quick
      test_l040_store_after_syscall;
    Alcotest.test_case "L040 needs speculation" `Quick
      test_l040_needs_speculative_buildset;
    Alcotest.test_case "L050 bitfield out of word" `Quick
      test_l050_bitfield_out_of_word;
    Alcotest.test_case "L051 degenerate shift" `Quick test_l051_degenerate_shift;
    Alcotest.test_case "L052 lossy extension" `Quick test_l052_lossy_extension;
    Alcotest.test_case "L060 hidden crossing" `Quick test_l060_hidden_crossing;
    Alcotest.test_case "L060 visible crossing ok" `Quick
      test_l060_visible_crossing_is_fine;
    Alcotest.test_case "L070 architected address action" `Quick
      test_l070_architected_address;
    Alcotest.test_case "L071 clamped register index" `Quick
      test_l071_clamped_reg_index;
    Alcotest.test_case "L072 provably misaligned" `Quick
      test_l072_provably_misaligned;
    Alcotest.test_case "L080 shown never written" `Quick
      test_l080_shown_never_written;
    Alcotest.test_case "L081 shown not required" `Quick
      test_l081_shown_not_required;
    Alcotest.test_case "L090 hidden carrier" `Quick test_l090_hidden_carrier;
    Alcotest.test_case "L091 visible carrier" `Quick test_l091_visible_carrier;
    Alcotest.test_case "L09x needs speculation" `Quick
      test_l09x_needs_speculation;
    Alcotest.test_case "diag order byte-stable" `Quick
      test_diag_order_and_stability;
    Alcotest.test_case "diag dedup across passes" `Quick test_diag_dedup;
    Alcotest.test_case "SARIF report parses" `Quick test_sarif_report_parses;
    Alcotest.test_case "suggest-buildset roundtrip" `Quick
      test_suggest_buildset_roundtrip;
    Alcotest.test_case "-W flag selection" `Quick test_flag_selection;
    QCheck_alcotest.to_alcotest (overlap_property "demo" Demo_isa.sources);
    QCheck_alcotest.to_alcotest
      (overlap_property "alpha" Isa_alpha.Alpha.sources);
    QCheck_alcotest.to_alcotest (overlap_property "arm" Isa_arm.Arm.sources);
    QCheck_alcotest.to_alcotest (overlap_property "ppc" Isa_ppc.Ppc.sources);
    QCheck_alcotest.to_alcotest
      (overlap_property "riscv" Isa_riscv.Riscv.sources);
    Alcotest.test_case "lint roundtrip: dirty spec" `Quick
      (check_lint_roundtrip "dirty" dirty_sources);
    Alcotest.test_case "lint roundtrip: demo" `Quick
      (check_lint_roundtrip "demo" Demo_isa.sources);
    Alcotest.test_case "lint roundtrip: alpha" `Quick
      (check_lint_roundtrip "alpha" Isa_alpha.Alpha.sources);
    Alcotest.test_case "sema accumulates errors" `Quick
      test_sema_accumulates_errors;
    Alcotest.test_case "sema load_all ok" `Quick test_sema_load_all_ok;
    Alcotest.test_case "alpha lints clean" `Quick
      (shipped_clean "alpha" Isa_alpha.Alpha.sources);
    Alcotest.test_case "arm lints clean" `Quick
      (shipped_clean "arm" Isa_arm.Arm.sources);
    Alcotest.test_case "ppc lints clean" `Quick
      (shipped_clean "ppc" Isa_ppc.Ppc.sources);
    Alcotest.test_case "riscv lints clean" `Quick
      (shipped_clean "riscv" Isa_riscv.Riscv.sources);
    Alcotest.test_case "demo lints clean" `Quick
      (shipped_clean "demo" Demo_isa.sources);
  ]
