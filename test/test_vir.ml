(** VIR: the portable workload IR — validation, the reference executor,
    and the generic label-fixup assembler. *)

open Vir

let test_validate_rejects () =
  (* malformed programs must produce structured diagnostics, not
     backtraces: a Sim_error from component "vir" naming the instruction *)
  let bad p msg =
    match Lang.validate p with
    | exception Machine.Sim_error.Error e ->
      Alcotest.(check string) (msg ^ ": component") "vir" e.component;
      Alcotest.(check bool) (msg ^ ": message") true (String.length e.what > 0);
      Alcotest.(check bool)
        (msg ^ ": names the instruction")
        true
        (List.mem_assoc "instruction" e.context)
    | () -> Alcotest.fail ("accepted: " ^ msg)
  in
  bad [ Lang.Li (16, 0l) ] "register out of range";
  bad [ Lang.Addi (0, 0, 40000) ] "immediate out of range";
  bad [ Lang.Shli (0, 0, 32) ] "shift out of range";
  bad [ Lang.Jmp "nowhere" ] "unknown label";
  bad [ Lang.Label "x"; Lang.Label "x" ] "duplicate label";
  bad [ Lang.Andi (0, 0, 256) ] "andi immediate out of range";
  (* the diagnostic points at the right instruction and renders it *)
  match Lang.validate [ Lang.Label "ok"; Lang.Shli (0, 0, 99) ] with
  | exception Machine.Sim_error.Error e ->
    Alcotest.(check (option string))
      "index of offending instruction" (Some "1")
      (List.assoc_opt "instruction" e.context);
    Alcotest.(check bool) "instruction text included" true
      (match List.assoc_opt "text" e.context with
      | Some t -> String.length t > 0
      | None -> false)
  | () -> Alcotest.fail "accepted bad shift"

let test_reference_determinism () =
  List.iter
    (fun (k : Kernels.sized) ->
      let a = Lang.run k.program and b = Lang.run k.program in
      Alcotest.(check bool) (k.kname ^ " deterministic") true
        (a.exit_status = b.exit_status && a.output = b.output
       && a.dyn_instrs = b.dyn_instrs))
    Kernels.test_suite

let test_kernels_have_output () =
  List.iter
    (fun (k : Kernels.sized) ->
      let r = Lang.run k.program in
      Alcotest.(check int) (k.kname ^ " writes 4 bytes") 4
        (String.length r.output);
      Alcotest.(check bool) (k.kname ^ " did real work") true (r.dyn_instrs > 500))
    Kernels.test_suite

let test_kernel_scaling () =
  (* bigger parameters mean more dynamic instructions *)
  let small = Lang.run (Kernels.vec_sum ~n:64) in
  let large = Lang.run (Kernels.vec_sum ~n:512) in
  Alcotest.(check bool) "scales" true (large.dyn_instrs > 4 * small.dyn_instrs)

let test_fuel_exhaustion () =
  let forever = [ Lang.Label "x"; Lang.Jmp "x" ] in
  match Lang.run ~fuel:1000 forever with
  | exception Machine.Sim_error.Error e ->
    Alcotest.(check string) "component" "vir" e.component;
    Alcotest.(check (option string)) "fuel recorded" (Some "1000")
      (List.assoc_opt "fuel" e.context)
  | _ -> Alcotest.fail "expected non-termination failure"

let test_32bit_wraparound () =
  (* multiplication overflow must wrap at 32 bits in the reference *)
  let p =
    Lang.
      [
        Li (8, 0x10001l);
        Mul (8, 8, 8);
        (* 0x10001^2 = 0x100020001 -> 0x00020001 (mod 2^32) *)
        Shri (9, 8, 16);
        Andi (9, 9, 255);
        Li (0, 0l);
        Mv (1, 9);
        Sys;
      ]
  in
  let r = Lang.run p in
  Alcotest.(check int) "wrapped product" 2 r.exit_status

let test_unsigned_compare () =
  let p =
    Lang.
      [
        Li (8, -1l) (* 0xFFFFFFFF *);
        Li (9, 1l);
        Li (4, 0l);
        Bcond (Ltu, 8, 9, "no") (* unsigned: 0xFFFFFFFF not < 1 *);
        Addi (4, 4, 1);
        Label "no";
        Bcond (Lt, 8, 9, "yes") (* signed: -1 < 1 *);
        Jmp "end";
        Label "yes";
        Addi (4, 4, 2);
        Label "end";
        Li (0, 0l);
        Mv (1, 4);
        Sys;
      ]
  in
  Alcotest.(check int) "ltu skipped, lt taken" 3 (Lang.run p).exit_status

(* ----------------------------------------------------------------- *)
(* Lower.assemble                                                      *)
(* ----------------------------------------------------------------- *)

let test_assemble_fixups () =
  let items =
    [
      Lower.Word 1L;
      Lower.Fix
        ((fun ~self_pc ~target_pc -> Int64.sub target_pc self_pc), "fwd");
      Lower.Word 2L;
      Lower.Mark "fwd";
      Lower.Fix ((fun ~self_pc ~target_pc -> Int64.sub target_pc self_pc), "fwd");
    ]
  in
  match Lower.assemble ~base:0x100L items with
  | [ a; fix_fwd; b; fix_back ] ->
    Alcotest.(check int64) "word 1" 1L a;
    Alcotest.(check int64) "word 2" 2L b;
    Alcotest.(check int64) "forward displacement" 8L fix_fwd;
    Alcotest.(check int64) "backward displacement" 0L fix_back
  | _ -> Alcotest.fail "wrong item count"

let test_assemble_unknown_label () =
  match Lower.assemble ~base:0L [ Lower.Fix ((fun ~self_pc:_ ~target_pc -> target_pc), "x") ] with
  | exception Machine.Sim_error.Error e ->
    Alcotest.(check string) "component" "asm" e.component;
    Alcotest.(check (option string)) "label named" (Some "x")
      (List.assoc_opt "label" e.context)
  | _ -> Alcotest.fail "expected failure"

let test_lowering_sizes () =
  (* each target's lowering of each kernel is nonempty and label-free *)
  List.iter
    (fun (t : Workload.target) ->
      List.iter
        (fun (k : Kernels.sized) ->
          let words = t.encode ~base:0x1000L k.program in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has code" t.tname k.kname)
            true
            (List.length words > List.length k.program / 2))
        Kernels.test_suite)
    Workload.targets

let suite =
  [
    Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
    Alcotest.test_case "reference determinism" `Quick test_reference_determinism;
    Alcotest.test_case "kernels write output" `Quick test_kernels_have_output;
    Alcotest.test_case "kernel scaling" `Quick test_kernel_scaling;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "32-bit wraparound" `Quick test_32bit_wraparound;
    Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
    Alcotest.test_case "assemble fixups" `Quick test_assemble_fixups;
    Alcotest.test_case "assemble unknown label" `Quick test_assemble_unknown_label;
    Alcotest.test_case "lowering sizes" `Quick test_lowering_sizes;
  ]
