let () =
  Gen_common.init_seed ();
  Alcotest.run "lisim"
    [
      ("memory", Test_memory.suite);
      ("regfile", Test_regfile.suite);
      ("semir", Test_semir.suite);
      ("lis", Test_lis.suite);
      ("synth", Test_synth.suite);
      ("alpha", Test_alpha.suite);
      ("arm", Test_arm.suite);
      ("ppc", Test_ppc.suite);
      ("riscv", Test_riscv.suite);
      ("workload", Test_workload.suite);
      ("hostile", Test_hostile.suite);
      ("timing", Test_timing.suite);
      ("manual", Test_manual.suite);
      ("specul", Test_specul.suite);
      ("os_emu", Test_os_emu.suite);
      ("core_units", Test_core_units.suite);
      ("vir", Test_vir.suite);
      ("pretty", Test_pretty.suite);
      ("isa_props", Test_isa_props.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("inject", Test_inject.suite);
      ("obs", Test_obs.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("dispatch", Test_dispatch.suite);
      ("export", Test_export.suite);
      ("fuzz", Test_fuzz.suite);
      ("super", Test_super.suite);
      ("prof", Test_prof.suite);
      ("fleet", Test_fleet.suite);
    ]
