(** Tests for the differential conformance fuzzer (lib/fuzz): generator
    validity and determinism, healthy-engine agreement across all
    buildsets, detection + shrinking of every seeded mutation mode,
    reproducer-file round trips, and replay of the checked-in corpus
    under [test/corpus/]. *)

let isas = Fuzz.Driver.all_isas
let spec_of = Fuzz.Driver.spec_of_isa

(* ----------------------------------------------------------------- *)
(* Generator                                                           *)
(* ----------------------------------------------------------------- *)

(* Every generated code word must decode, and the decoded instruction's
   (mask, match) must actually cover the word — the program generator is
   built on the spec's own encoding metadata, so a violation here means
   it drifted from the decoder. *)
let prop_generated_words_decode =
  QCheck.Test.make ~count:40 ~name:"fuzz generator emits decodable programs"
    QCheck.(pair (oneofl Fuzz.Driver.all_isas) small_nat)
    (fun (isa, index) ->
      let spec = spec_of isa in
      let cx = Fuzz.Gen.make_ctx ~isa spec in
      let tc = Fuzz.Gen.generate cx ~seed:7L ~index in
      let d = Specsim.Decoder.make spec in
      Array.for_all
        (fun w ->
          let idx = Specsim.Decoder.decode d w in
          idx >= 0
          &&
          let i = spec.instrs.(idx) in
          Int64.equal (Int64.logand w i.i_mask) i.i_match)
        tc.Fuzz.Gen.tc_code)

let test_generator_deterministic () =
  List.iter
    (fun isa ->
      let spec = spec_of isa in
      let cx = Fuzz.Gen.make_ctx ~isa spec in
      let a = Fuzz.Gen.generate cx ~seed:99L ~index:5 in
      let b = Fuzz.Gen.generate cx ~seed:99L ~index:5 in
      Alcotest.(check bool) (isa ^ ": same (seed, index), same testcase")
        true (a = b);
      let c = Fuzz.Gen.generate cx ~seed:99L ~index:6 in
      Alcotest.(check bool) (isa ^ ": next index differs") false
        (a.Fuzz.Gen.tc_code = c.Fuzz.Gen.tc_code))
    isas

(* ----------------------------------------------------------------- *)
(* Healthy engines: no divergence                                      *)
(* ----------------------------------------------------------------- *)

let test_healthy_no_divergence () =
  List.iter
    (fun isa ->
      let o = Fuzz.Driver.hunt ~isa ~seed:11L ~budget:60 () in
      match o.Fuzz.Driver.o_found with
      | None -> ()
      | Some (_, d) ->
        Alcotest.failf "%s: unexpected divergence — %s" isa
          (Fuzz.Oracle.pp_divergence d))
    isas

(* Disabling the translation caches is an architectural no-op, so the
   oracle must stay quiet there too (the A/B the CLI exposes as
   --no-chain / --no-site-cache). *)
let test_healthy_caches_off () =
  let cfg =
    { Fuzz.Oracle.default_config with chain = false; site_cache = false }
  in
  let o = Fuzz.Driver.hunt ~cfg ~isa:"tiny" ~seed:11L ~budget:48 () in
  match o.Fuzz.Driver.o_found with
  | None -> ()
  | Some (_, d) ->
    Alcotest.failf "caches off: unexpected divergence — %s"
      (Fuzz.Oracle.pp_divergence d)

(* ----------------------------------------------------------------- *)
(* Mutation testing: every seeded defect is detected and shrunk        *)
(* ----------------------------------------------------------------- *)

(* Only block interfaces host the mutated machinery, so restricting the
   candidate list keeps the kill checks fast without weakening them. *)
let block_only =
  List.filter
    (fun b -> String.length b >= 5 && String.equal (String.sub b 0 5) "block")
    Fuzz.Oracle.default_config.buildsets

let kill ?(seed = 42L) ~isa mutate ~budget =
  let name = Specsim.Synth.mutation_to_string mutate in
  let cfg =
    { Fuzz.Oracle.default_config with
      mutate = Some mutate;
      buildsets = block_only;
    }
  in
  let o = Fuzz.Driver.hunt ~cfg ~isa ~seed ~budget () in
  match o.Fuzz.Driver.o_shrunk with
  | None ->
    Alcotest.failf "%s/%s survived %d oracle executions" isa name budget
  | Some (tc, d) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s shrinks to <= 8 instructions (got %d)" isa name
         (Array.length tc.Fuzz.Gen.tc_code))
      true
      (Array.length tc.Fuzz.Gen.tc_code <= 8);
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s divergence names a block buildset" isa name)
      true
      (List.mem d.Fuzz.Oracle.d_buildset block_only)

let test_kill_skip_invalidate () =
  kill ~isa:"tiny" Specsim.Synth.Skip_invalidate ~budget:200;
  kill ~isa:"alpha" Specsim.Synth.Skip_invalidate ~budget:400;
  kill ~isa:"riscv" ~seed:1L Specsim.Synth.Skip_invalidate ~budget:400

let test_kill_stale_chain () =
  kill ~isa:"tiny" Specsim.Synth.Stale_chain ~budget:200;
  kill ~isa:"riscv" ~seed:1L Specsim.Synth.Stale_chain ~budget:400

let test_kill_stride4 () =
  (* observable only where instrsize <> 4: tiny16 by construction, and
     riscv because RVC parcels make the real stride non-uniform — the
     uniform pc+4i walk the mutation reintroduces is caught immediately *)
  kill ~isa:"tiny" Specsim.Synth.Stride4 ~budget:64;
  kill ~isa:"riscv" Specsim.Synth.Stride4 ~budget:64

(* ----------------------------------------------------------------- *)
(* Reproducer files                                                    *)
(* ----------------------------------------------------------------- *)

let test_repro_roundtrip () =
  let spec = spec_of "tiny" in
  let cx = Fuzz.Gen.make_ctx ~isa:"tiny" spec in
  let tc = Fuzz.Gen.generate cx ~seed:5L ~index:3 in
  let cfg =
    { Fuzz.Oracle.default_config with
      mutate = Some Specsim.Synth.Stride4;
      chain = false;
      max_instrs = 512;
    }
  in
  let text = Fuzz.Repro.to_string cfg ~buildset:"block_min" tc in
  let r = Fuzz.Repro.parse text in
  Alcotest.(check bool) "testcase survives the round trip" true
    (r.Fuzz.Repro.r_tc = tc);
  Alcotest.(check (option string)) "buildset recorded" (Some "block_min")
    r.Fuzz.Repro.r_buildset;
  Alcotest.(check bool) "config survives the round trip" true
    (r.Fuzz.Repro.r_cfg = cfg);
  Alcotest.(check string) "re-rendering is byte-identical" text
    (Fuzz.Repro.to_string r.Fuzz.Repro.r_cfg
       ?buildset:r.Fuzz.Repro.r_buildset r.Fuzz.Repro.r_tc)

let test_repro_rejects_garbage () =
  List.iter
    (fun (label, text) ->
      match Fuzz.Repro.parse text with
      | exception Fuzz.Repro.Bad_repro _ -> ()
      | _ -> Alcotest.failf "%s: parse accepted a bad reproducer" label)
    [
      ("empty", "");
      ("bad header", "some-other-format v9\nend\n");
      ("no end", "lisim-fuzz-repro v1\nisa tiny\ncode 0x0\n");
      ("no code", "lisim-fuzz-repro v1\nisa tiny\nend\n");
      ( "bad mutation",
        "lisim-fuzz-repro v1\nisa tiny\nmutate nonsense\ncode 0x0\nend\n" );
    ]

(* ----------------------------------------------------------------- *)
(* Corpus replay                                                       *)
(* ----------------------------------------------------------------- *)

(* cwd is _build/default/test under `dune runtest`, the project root
   under a bare `dune exec test/main.exe`. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let verdict_strings vs =
  List.map
    (fun (bs, d) ->
      match d with
      | None -> bs ^ ": ok"
      | Some d -> bs ^ ": " ^ Fuzz.Oracle.pp_divergence d)
    vs

(* Every checked-in reproducer must replay to its recorded verdict:
   files carrying a diverging buildset (fuzzer-found mutation kills)
   must still diverge there, files without one must be clean
   everywhere. Replay twice to pin determinism. *)
let test_corpus_replay () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Fuzz.Repro.load ~path:(Filename.concat corpus_dir f) in
      let v1 = Fuzz.Driver.replay r in
      let v2 = Fuzz.Driver.replay r in
      Alcotest.(check (list string))
        (f ^ ": replay is deterministic")
        (verdict_strings v1) (verdict_strings v2);
      match r.Fuzz.Repro.r_buildset with
      | Some bs -> (
        match v1 with
        | (bs0, Some _) :: _ when String.equal bs0 bs -> ()
        | _ -> Alcotest.failf "%s: recorded buildset %s no longer diverges" f bs)
      | None ->
        List.iter
          (fun (bs, d) ->
            match d with
            | None -> ()
            | Some d ->
              Alcotest.failf "%s: %s unexpectedly diverges — %s" f bs
                (Fuzz.Oracle.pp_divergence d))
          v1)
    files

let suite =
  [
    QCheck_alcotest.to_alcotest prop_generated_words_decode;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "healthy engines agree (all ISAs)" `Slow
      test_healthy_no_divergence;
    Alcotest.test_case "healthy with caches disabled" `Quick
      test_healthy_caches_off;
    Alcotest.test_case "mutation kill: skip-invalidate" `Slow
      test_kill_skip_invalidate;
    Alcotest.test_case "mutation kill: stale-chain" `Slow test_kill_stale_chain;
    Alcotest.test_case "mutation kill: stride4 (tiny16 only)" `Quick
      test_kill_stride4;
    Alcotest.test_case "reproducer round trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "reproducer rejects garbage" `Quick
      test_repro_rejects_garbage;
    Alcotest.test_case "corpus replays to recorded verdicts" `Quick
      test_corpus_replay;
  ]
